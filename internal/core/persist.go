package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/sequence"
	"repro/internal/storage"
)

// Index snapshots. Save serialises everything an OIF needs — options,
// the item order, the record reordering, the metadata table, the space
// accounting, the pending delta, and the raw B-tree pages — into one
// stream guarded by a CRC32 trailer; Load reconstructs a queryable index
// backed by an in-memory pager. The paper's own deployment would keep the
// Berkeley DB file plus a small sidecar; a single self-contained snapshot
// is the simpler equivalent for a library.

const snapshotMagic = "OIFSNAP1"

// ErrBadSnapshot reports a corrupt or foreign snapshot stream.
var ErrBadSnapshot = errors.New("core: bad index snapshot")

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU32Slice(w io.Writer, vals []uint32) error {
	if err := writeU64(w, uint64(len(vals))); err != nil {
		return err
	}
	var buf [4 * 1024]byte
	for len(vals) > 0 {
		n := len(vals)
		if n > 1024 {
			n = 1024
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], vals[i])
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// maxSliceLen bounds slice headers so a corrupt stream cannot force a
// huge allocation before the CRC check has a chance to fail.
const maxSliceLen = 1 << 31

func readU32Slice(r io.Reader) ([]uint32, error) {
	n, err := readU64(r)
	if err != nil {
		return nil, err
	}
	if n > maxSliceLen {
		return nil, fmt.Errorf("%w: slice of %d elements", ErrBadSnapshot, n)
	}
	out := make([]uint32, n)
	var buf [4 * 1024]byte
	for i := uint64(0); i < n; {
		chunk := n - i
		if chunk > 1024 {
			chunk = 1024
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, err
		}
		for j := uint64(0); j < chunk; j++ {
			out[i+j] = binary.LittleEndian.Uint32(buf[j*4:])
		}
		i += chunk
	}
	return out, nil
}

// Save writes a self-contained snapshot of the index to w.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw}
	if _, err := io.WriteString(cw, snapshotMagic); err != nil {
		return err
	}
	for _, v := range []uint32{
		uint32(ix.opts.PageSize), uint32(ix.opts.BlockPostings),
		uint32(ix.numRecords), uint32(ix.domainSize), ix.meta.EmptyUpper,
		uint32(ix.opts.TagPrefix),
	} {
		if err := writeU32(cw, v); err != nil {
			return err
		}
	}
	// Item order.
	if err := writeU32Slice(cw, ix.ord.Items()); err != nil {
		return err
	}
	// Metadata regions.
	regions := make([]uint32, 0, 3*len(ix.meta.Regions))
	for _, reg := range ix.meta.Regions {
		regions = append(regions, reg.L, reg.U, reg.U1)
	}
	if err := writeU32Slice(cw, regions); err != nil {
		return err
	}
	// Reordering.
	flat, off, origIndex := ix.re.Parts()
	if err := writeU32Slice(cw, flat); err != nil {
		return err
	}
	if err := writeU32Slice(cw, off); err != nil {
		return err
	}
	if err := writeU32Slice(cw, origIndex); err != nil {
		return err
	}
	// Space accounting.
	for _, v := range []int64{ix.blocks, ix.postingBytes, ix.keyBytes} {
		if err := writeU64(cw, uint64(v)); err != nil {
			return err
		}
	}
	lp := make([]uint32, len(ix.listPostings))
	for i, v := range ix.listPostings {
		lp[i] = uint32(v)
	}
	if err := writeU32Slice(cw, lp); err != nil {
		return err
	}
	// Pending delta.
	if err := writeU64(cw, uint64(len(ix.delta))); err != nil {
		return err
	}
	for _, r := range ix.delta {
		if err := writeU32(cw, r.ID); err != nil {
			return err
		}
		if err := writeU32Slice(cw, r.Set); err != nil {
			return err
		}
	}
	// Raw pages. Flush the pool first so the pager is current.
	pool := ix.tree.Pool()
	if err := pool.Flush(); err != nil {
		return err
	}
	pager := pool.Pager()
	if err := writeU64(cw, uint64(pager.NumPages())); err != nil {
		return err
	}
	page := make([]byte, pager.PageSize())
	for id := storage.PageID(0); int64(id) < pager.NumPages(); id++ {
		if err := pager.ReadPage(id, page); err != nil {
			return err
		}
		if _, err := cw.Write(page); err != nil {
			return err
		}
	}
	// CRC trailer (not itself CRC'd).
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], cw.crc)
	if _, err := bw.Write(b[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reconstructs an index from a snapshot produced by Save. The index
// is backed by an in-memory pager and metered with the default cache.
func Load(r io.Reader) (*Index, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<16)}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	var hdr [6]uint32
	for i := range hdr {
		v, err := readU32(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
		}
		hdr[i] = v
	}
	pageSize, blockPostings := int(hdr[0]), int(hdr[1])
	numRecords, domainSize, emptyUpper := int(hdr[2]), int(hdr[3]), hdr[4]
	tagPrefix := int(hdr[5])
	if pageSize <= 0 || pageSize > 1<<20 || domainSize < 0 || numRecords < 0 {
		return nil, fmt.Errorf("%w: implausible header", ErrBadSnapshot)
	}

	items, err := readU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: order: %v", ErrBadSnapshot, err)
	}
	ord, err := sequence.NewOrderFromItems(items)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	regionWords, err := readU32Slice(cr)
	if err != nil || len(regionWords) != 3*domainSize {
		return nil, fmt.Errorf("%w: regions", ErrBadSnapshot)
	}
	meta := newMetadata(domainSize)
	meta.EmptyUpper = emptyUpper
	for i := 0; i < domainSize; i++ {
		meta.Regions[i] = Region{L: regionWords[3*i], U: regionWords[3*i+1], U1: regionWords[3*i+2]}
	}
	flat, err := readU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: arena: %v", ErrBadSnapshot, err)
	}
	off, err := readU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: offsets: %v", ErrBadSnapshot, err)
	}
	origIndex, err := readU32Slice(cr)
	if err != nil {
		return nil, fmt.Errorf("%w: id map: %v", ErrBadSnapshot, err)
	}
	re, err := sequence.ReorderedFromParts(flat, off, origIndex)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if re.Len() != numRecords {
		return nil, fmt.Errorf("%w: %d reordered records, header says %d", ErrBadSnapshot, re.Len(), numRecords)
	}

	var space [3]int64
	for i := range space {
		v, err := readU64(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: space stats", ErrBadSnapshot)
		}
		space[i] = int64(v)
	}
	lp, err := readU32Slice(cr)
	if err != nil || len(lp) != domainSize {
		return nil, fmt.Errorf("%w: list postings", ErrBadSnapshot)
	}
	listPostings := make([]int64, domainSize)
	for i, v := range lp {
		listPostings[i] = int64(v)
	}
	nDelta, err := readU64(cr)
	if err != nil || nDelta > maxSliceLen {
		return nil, fmt.Errorf("%w: delta count", ErrBadSnapshot)
	}
	delta := make([]dataset.Record, 0, nDelta)
	for i := uint64(0); i < nDelta; i++ {
		id, err := readU32(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: delta record", ErrBadSnapshot)
		}
		set, err := readU32Slice(cr)
		if err != nil {
			return nil, fmt.Errorf("%w: delta set", ErrBadSnapshot)
		}
		delta = append(delta, dataset.Record{ID: id, Set: set})
	}

	nPages, err := readU64(cr)
	if err != nil || nPages > maxSliceLen {
		return nil, fmt.Errorf("%w: page count", ErrBadSnapshot)
	}
	pager := storage.NewMemPager(pageSize)
	page := make([]byte, pageSize)
	for i := uint64(0); i < nPages; i++ {
		if _, err := io.ReadFull(cr, page); err != nil {
			return nil, fmt.Errorf("%w: page %d: %v", ErrBadSnapshot, i, err)
		}
		id, err := pager.Allocate()
		if err != nil {
			return nil, err
		}
		if err := pager.WritePage(id, page); err != nil {
			return nil, err
		}
	}
	wantCRC := cr.crc
	var tail [4]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return nil, fmt.Errorf("%w: missing CRC trailer", ErrBadSnapshot)
	}
	if gotCRC := binary.LittleEndian.Uint32(tail[:]); gotCRC != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrBadSnapshot, gotCRC, wantCRC)
	}

	pool := storage.NewBufferPool(pager, storage.DefaultPoolPages)
	tree, err := btree.Open(pool)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &Index{
		tree:         tree,
		ord:          ord,
		re:           re,
		meta:         meta,
		numRecords:   numRecords,
		domainSize:   domainSize,
		opts:         Options{PageSize: pageSize, BlockPostings: blockPostings, BuildPoolPages: 1024, TagPrefix: tagPrefix},
		blocks:       space[0],
		postingBytes: space[1],
		keyBytes:     space[2],
		listPostings: listPostings,
		delta:        delta,
	}, nil
}
