package core

import (
	"repro/internal/sequence"
	"repro/internal/vbyte"
)

// decodedCache keeps recently used inverted-list blocks in decoded
// (posting-slice) form, so hot lists skip the vbyte decode on every
// visit. It is the memory-hierarchy twin of the paper's disk argument:
// under a skewed item distribution a few very hot lists absorb most of
// the query traffic, so keeping exactly those lists decoded converts the
// per-visit decode cost into a one-time one.
//
// Entries are keyed by block identity (rank, lastID) — unique because a
// list's blocks partition its record ids — and sized in postings.
// Admission is skew-aware: when the index's item-frequency profile is
// skewed (internal/stats fit, the same machinery the sharded planner
// uses), an incoming block may only evict blocks from colder lists, so
// the hottest lists' blocks, once decoded, stay decoded. Uniform
// profiles degrade to plain LRU.
//
// The cache belongs to one Index (or Reader clone) and is as
// concurrency-unsafe as its owner. Invalidation rides the existing
// lifecycle: list blocks are immutable once built, Insert only grows the
// memory delta, and MergeDelta swaps in a wholly rebuilt Index (fresh
// cache included), so a cache can never serve stale postings.
type decodedCache struct {
	maxPostings int
	curPostings int
	weighted    bool // skew-aware admission (vs plain LRU)

	entries map[uint64]*dcEntry
	head    *dcEntry // most recently used
	tail    *dcEntry // least recently used
	free    *dcEntry // recycled entries, singly linked through next

	stats DecodedCacheStats
}

// dcEntry is one cached decoded block.
type dcEntry struct {
	key      uint64
	weight   int64 // postings in the source list (its "hotness")
	postings []vbyte.Posting
	prev     *dcEntry
	next     *dcEntry
}

// DecodedCacheStats reports decoded-cache effectiveness. Hits+Misses
// counts block visits on the query path; Admitted/Rejected/Evicted
// describe the admission policy's behaviour.
type DecodedCacheStats struct {
	Hits     int64 // block visits served without decoding
	Misses   int64 // block visits that decoded from page bytes
	Admitted int64 // decoded blocks copied into the cache
	Rejected int64 // decoded blocks denied admission (colder than residents)
	Evicted  int64 // cached blocks displaced by hotter arrivals
	Postings int   // postings currently cached
	Capacity int   // maximum postings
}

// HitRate returns Hits / (Hits + Misses), or 0 before any visit.
func (s DecodedCacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Add returns s + t (entry-count fields are summed too, which is the
// useful aggregate across shard readers).
func (s DecodedCacheStats) Add(t DecodedCacheStats) DecodedCacheStats {
	return DecodedCacheStats{
		Hits:     s.Hits + t.Hits,
		Misses:   s.Misses + t.Misses,
		Admitted: s.Admitted + t.Admitted,
		Rejected: s.Rejected + t.Rejected,
		Evicted:  s.Evicted + t.Evicted,
		Postings: s.Postings + t.Postings,
		Capacity: s.Capacity + t.Capacity,
	}
}

// evictScanDepth bounds how far from the LRU tail the admission scan
// looks for a colder victim. A shallow scan keeps admission O(1) while
// still letting a hot block displace a cold one that happens to sit just
// above the tail.
const evictScanDepth = 8

// newDecodedCache returns a cache of at most maxPostings decoded
// postings; weighted selects skew-aware admission.
func newDecodedCache(maxPostings int, weighted bool) *decodedCache {
	if maxPostings <= 0 {
		return nil
	}
	return &decodedCache{
		maxPostings: maxPostings,
		weighted:    weighted,
		entries:     make(map[uint64]*dcEntry),
	}
}

// blockCacheKey is the block identity (rank, lastID): lastID is unique
// within a rank's list because blocks partition the list's ids.
func blockCacheKey(rank sequence.Rank, lastID uint32) uint64 {
	return uint64(rank)<<32 | uint64(lastID)
}

// seedStats folds a predecessor cache's counters into this one, so the
// reported statistics stay cumulative across MergeDelta's rebuild. Only
// the event counters carry over; Postings/Capacity are gauges of the
// live cache.
func (c *decodedCache) seedStats(s DecodedCacheStats) {
	c.stats.Hits += s.Hits
	c.stats.Misses += s.Misses
	c.stats.Admitted += s.Admitted
	c.stats.Rejected += s.Rejected
	c.stats.Evicted += s.Evicted
}

// Stats snapshots the counters.
func (c *decodedCache) Stats() DecodedCacheStats {
	s := c.stats
	s.Postings = c.curPostings
	s.Capacity = c.maxPostings
	return s
}

// get returns the decoded block for key, if cached. The returned slice
// is owned by the cache: callers must treat it as read-only and must not
// retain it across queries.
func (c *decodedCache) get(key uint64) ([]vbyte.Posting, bool) {
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.touch(e)
		return e.postings, true
	}
	c.stats.Misses++
	return nil, false
}

// admit offers a freshly decoded block for caching. weight is the
// hotness of the block's list (its total postings). On admission the
// postings are copied into cache-owned storage (recycling evicted
// entries' slices) and the cached copy is returned; a nil return means
// the block was rejected and the caller keeps using its scratch slice.
func (c *decodedCache) admit(key uint64, weight int64, ps []vbyte.Posting) []vbyte.Posting {
	n := len(ps)
	if n == 0 || n > c.maxPostings {
		return nil
	}
	if e, ok := c.entries[key]; ok {
		// Already resident (an earlier visit admitted it); serve that copy.
		return e.postings
	}
	switch {
	case c.curPostings+n <= c.maxPostings:
		// Room to spare: no evictions needed.
	case c.weighted:
		// Plan the evictions before performing any: if the admissible
		// victims (no hotter than the incomer) within the scan window
		// cannot free enough room, the incomer is rejected WITHOUT
		// disturbing the cache — evicting first and rejecting anyway
		// would throw away cached blocks for no gain.
		var victims [evictScanDepth]*dcEntry
		nv, freed, scanned := 0, 0, 0
		for e := c.tail; e != nil && scanned < evictScanDepth; e = e.prev {
			scanned++
			if e.weight > weight {
				continue // hotter than the incomer: not admissible
			}
			victims[nv] = e
			nv++
			freed += len(e.postings)
			if c.curPostings-freed+n <= c.maxPostings {
				break
			}
		}
		if c.curPostings-freed+n > c.maxPostings {
			c.stats.Rejected++
			return nil
		}
		for i := 0; i < nv; i++ {
			c.evict(victims[i])
		}
	default:
		// Plain LRU: every resident is admissible, so room can always
		// be made (n fits the cache by the check above).
		for c.curPostings+n > c.maxPostings {
			c.evict(c.tail)
		}
	}
	e := c.newEntry()
	e.key = key
	e.weight = weight
	e.postings = append(e.postings[:0], ps...)
	c.entries[key] = e
	c.pushFront(e)
	c.curPostings += n
	c.stats.Admitted++
	return e.postings
}

// evict removes e, recycling its posting storage for future admissions.
func (c *decodedCache) evict(e *dcEntry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.curPostings -= len(e.postings)
	c.stats.Evicted++
	e.prev = nil
	e.next = c.free
	c.free = e
}

// newEntry pops a recycled entry or allocates one.
func (c *decodedCache) newEntry() *dcEntry {
	if e := c.free; e != nil {
		c.free = e.next
		e.next = nil
		return e
	}
	return &dcEntry{}
}

func (c *decodedCache) unlink(e *dcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *decodedCache) pushFront(e *dcEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *decodedCache) touch(e *dcEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
