package core

import (
	"repro/internal/storage"
)

// NewReader returns an independent query handle over the same index
// pages. An Index is not safe for concurrent use because queries mutate
// the buffer pool (frames, LRU order, statistics) and the query arena;
// the pages themselves are immutable once built, so a reader with its
// own pool of the given capacity can run queries in parallel with the
// parent and with other readers.
//
// The reader shares the parent's delta and tombstone snapshots: inserts
// and deletes made on the parent after NewReader are invisible to the
// reader (create a fresh reader after MergeDelta). Readers must not
// Insert, Delete, MergeDelta, Save, or SetPool.
func (ix *Index) NewReader(poolPages int) (*Reader, error) {
	pool := storage.NewBufferPool(ix.tree.Pool().Pager(), poolPages)
	view, err := ix.tree.View(pool)
	if err != nil {
		return nil, err
	}
	clone := *ix
	clone.tree = view
	// Freeze the delta at its current extent; the parent appends only.
	clone.delta = ix.delta[:len(ix.delta):len(ix.delta)]
	// The clone must not share mutable query state with the parent:
	// drop the copied arena and decoded-cache pointers so ensureRuntime
	// attaches fresh, reader-private instances (sized by the same
	// options; note every reader therefore carries its own decoded
	// cache, so budget DecodedCachePostings per reader).
	clone.arena, clone.dcache = nil, nil
	return &Reader{ix: &clone, pool: pool}, nil
}

// Reader is a concurrency-safe-by-isolation query handle produced by
// NewReader. Each reader owns its cache; use one per goroutine.
type Reader struct {
	ix   *Index
	pool *storage.BufferPool
}

// Subset answers like Index.Subset.
func (r *Reader) Subset(qs []uint32) ([]uint32, error) { return r.ix.Subset(qs) }

// Equality answers like Index.Equality.
func (r *Reader) Equality(qs []uint32) ([]uint32, error) { return r.ix.Equality(qs) }

// Superset answers like Index.Superset.
func (r *Reader) Superset(qs []uint32) ([]uint32, error) { return r.ix.Superset(qs) }

// AppendSubset answers like Index.AppendSubset — the reader's
// zero-allocation entry point.
func (r *Reader) AppendSubset(dst []uint32, qs []uint32) ([]uint32, error) {
	return r.ix.AppendSubset(dst, qs)
}

// AppendSubsetWithin answers like Index.AppendSubsetWithin: the subset
// answer restricted to a caller-provided sorted candidate set.
func (r *Reader) AppendSubsetWithin(dst []uint32, qs []uint32, cands []uint32) ([]uint32, error) {
	return r.ix.AppendSubsetWithin(dst, qs, cands)
}

// AppendEquality answers like Index.AppendEquality.
func (r *Reader) AppendEquality(dst []uint32, qs []uint32) ([]uint32, error) {
	return r.ix.AppendEquality(dst, qs)
}

// AppendSuperset answers like Index.AppendSuperset.
func (r *Reader) AppendSuperset(dst []uint32, qs []uint32) ([]uint32, error) {
	return r.ix.AppendSuperset(dst, qs)
}

// Stats returns this reader's private access statistics.
func (r *Reader) Stats() storage.AccessStats { return r.pool.Stats() }

// ResetStats zeroes this reader's statistics.
func (r *Reader) ResetStats() { r.pool.ResetStats() }

// Pool returns the reader's private buffer pool.
func (r *Reader) Pool() *storage.BufferPool { return r.pool }

// DecodedStats reports this reader's private decoded-block cache
// statistics (zeroes when the cache is disabled).
func (r *Reader) DecodedStats() DecodedCacheStats { return r.ix.DecodedStats() }
