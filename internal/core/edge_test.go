package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
)

// Degenerate inputs: every index operation must behave, not panic.

func TestEmptyDataset(t *testing.T) {
	d := dataset.New(10)
	ix, err := Build(d, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range [][]dataset.Item{nil, {3}, {1, 2, 3}} {
		if got, err := ix.Subset(qs); err != nil || len(got) != 0 {
			t.Fatalf("Subset(%v) = %v, %v", qs, got, err)
		}
		if got, err := ix.Equality(qs); err != nil || len(got) != 0 {
			t.Fatalf("Equality(%v) = %v, %v", qs, got, err)
		}
		if got, err := ix.Superset(qs); err != nil || len(got) != 0 {
			t.Fatalf("Superset(%v) = %v, %v", qs, got, err)
		}
	}
}

func TestZeroDomain(t *testing.T) {
	d := dataset.New(0)
	if _, err := d.Add(nil); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Superset(nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("Superset(∅) over empty-domain data = %v, %v", got, err)
	}
}

func TestSingleRecord(t *testing.T) {
	d := dataset.New(5)
	if _, err := d.Add([]dataset.Item{1, 3}); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := ix.Subset([]dataset.Item{1}); !equalIDs(got, []uint32{1}) {
		t.Fatalf("Subset = %v", got)
	}
	if got, _ := ix.Equality([]dataset.Item{1, 3}); !equalIDs(got, []uint32{1}) {
		t.Fatalf("Equality = %v", got)
	}
	if got, _ := ix.Superset([]dataset.Item{1, 2, 3}); !equalIDs(got, []uint32{1}) {
		t.Fatalf("Superset = %v", got)
	}
	if got, _ := ix.Superset([]dataset.Item{1}); len(got) != 0 {
		t.Fatalf("Superset({1}) = %v, want none", got)
	}
}

func TestAllRecordsIdentical(t *testing.T) {
	// Every record is the same set: equality must return all of them,
	// exercising the multi-block duplicate path (§4.2's "enough
	// duplicates of qs that do not fit in a single block").
	d := dataset.New(6)
	for i := 0; i < 500; i++ {
		if _, err := d.Add([]dataset.Item{1, 4}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Equality([]dataset.Item{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("Equality over identical records = %d answers, want 500", len(got))
	}
	for i, id := range got {
		if id != uint32(i+1) {
			t.Fatalf("ids not dense ascending at %d: %d", i, id)
		}
	}
}

func TestFullDomainRecords(t *testing.T) {
	// Records spanning the whole (small) vocabulary.
	d := dataset.New(8)
	full := []dataset.Item{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < 50; i++ {
		if _, err := d.Add(full); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Add(full[:4]); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Superset(full)
	if err != nil {
		t.Fatal(err)
	}
	if want := naive.Superset(d, full); !equalIDs(got, want) {
		t.Fatalf("Superset(full domain) = %d answers, want %d", len(got), len(want))
	}
	got, err = ix.Subset(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("Subset(full domain) = %d answers, want 50", len(got))
	}
}

// TestLeastFrequentQueryItems hits the paper's observation that queries
// over the largest ranks are cheap: their RoI is tiny.
func TestLeastFrequentQueryItems(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 5000, DomainSize: 100, MinLen: 2, MaxLen: 8, ZipfTheta: 1.0, Seed: 66,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Query the two least frequent items that co-occur somewhere.
	ord := ix.Order()
	qs := []dataset.Item{ord.Item(98), ord.Item(99)}
	got, err := ix.Subset(qs)
	if err != nil {
		t.Fatal(err)
	}
	if want := naive.Subset(d, qs); !equalIDs(got, want) {
		t.Fatalf("rare-item Subset = %v, want %v", got, want)
	}
}
