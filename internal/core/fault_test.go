package core

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/storage"
)

// TestQueryFaultsSurfaceCleanly builds the index on a fault-injectable
// pager (disabled during the build) and verifies all three predicates
// surface injected read faults instead of panicking or silently
// returning partial answers.
func TestQueryFaultsSurfaceCleanly(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 3000, DomainSize: 60, MinLen: 2, MaxLen: 8, ZipfTheta: 0.8, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	faulty := storage.NewFaultyPager(storage.NewMemPager(512), 0)
	ix, err := Build(d, Options{
		PageSize:      512,
		BlockPostings: 8,
		Pool:          storage.NewBufferPool(faulty, 1024),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetPool(storage.NewBufferPool(faulty, 8)); err != nil {
		t.Fatal(err)
	}
	qs := d.Record(100).Set

	// Reference answers while the fault is disabled.
	wantSub, err := ix.Subset(qs)
	if err != nil {
		t.Fatal(err)
	}
	buildOps := faulty.Ops()

	preds := map[string]func() ([]uint32, error){
		"subset":   func() ([]uint32, error) { return ix.Subset(qs) },
		"equality": func() ([]uint32, error) { return ix.Equality(qs) },
		"superset": func() ([]uint32, error) { return ix.Superset(qs) },
	}
	_ = buildOps
	for offset := int64(1); offset <= 40; offset += 2 {
		// Re-arm: fail `offset` operations from now.
		faulty.Reset()
		if err := ix.Pool().DropAll(); err != nil {
			t.Fatal(err)
		}
		faulty.FailAt = faulty.Ops() + offset
		for name, run := range preds {
			got, err := run()
			if err != nil {
				if !errors.Is(err, storage.ErrInjected) {
					t.Fatalf("offset=%d %s: %v", offset, name, err)
				}
				// Disarm so the remaining predicates run clean.
				faulty.Reset()
				continue
			}
			// If the fault did not fire during this query the result
			// must be complete and correct.
			if name == "subset" && !equalIDs(got, wantSub) {
				t.Fatalf("offset=%d: fault-free subset diverged", offset)
			}
		}
	}
}

// TestBuildPropagatesDatasetErrors covers invalid build inputs.
func TestBuildPropagatesDatasetErrors(t *testing.T) {
	// A record too wide for the page size must fail loudly at build.
	wide := dataset.New(3000)
	set := make([]dataset.Item, 800)
	for i := range set {
		set[i] = dataset.Item(i)
	}
	if _, err := wide.Add(set); err != nil {
		t.Fatal(err)
	}
	_, err := Build(wide, Options{PageSize: 512, BlockPostings: 4})
	if !errors.Is(err, ErrRecordTooWide) {
		t.Fatalf("Build with 800-item record on 512B pages: %v, want ErrRecordTooWide", err)
	}
}
