package core
