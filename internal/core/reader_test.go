package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
)

// TestConcurrentReaders hammers one index from many goroutines through
// per-goroutine readers; run with -race to verify isolation.
func TestConcurrentReaders(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 4000, DomainSize: 60, MinLen: 1, MaxLen: 8, ZipfTheta: 0.8, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const queriesPer = 60
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		reader, err := ix.NewReader(8)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(seed int64, r *Reader) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesPer; i++ {
				k := 1 + rng.Intn(5)
				qs := make([]dataset.Item, k)
				for j := range qs {
					qs[j] = dataset.Item(rng.Intn(60))
				}
				var got []uint32
				var want []uint32
				var err error
				switch i % 3 {
				case 0:
					got, err = r.Subset(qs)
					want = naive.Subset(d, qs)
				case 1:
					got, err = r.Equality(qs)
					want = naive.Equality(d, qs)
				default:
					got, err = r.Superset(qs)
					want = naive.Superset(d, qs)
				}
				if err != nil {
					errs <- err
					return
				}
				if !equalIDs(got, want) {
					errs <- &mismatchError{qs: qs}
					return
				}
			}
		}(int64(g), reader)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ qs []dataset.Item }

func (e *mismatchError) Error() string { return "concurrent reader diverged from oracle" }

// TestReaderDeltaSnapshot pins the visibility contract: inserts after
// NewReader are invisible to the existing reader, visible to a new one.
func TestReaderDeltaSnapshot(t *testing.T) {
	d := dataset.New(5)
	d.Add([]dataset.Item{0, 1})
	ix, err := Build(d, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	old, err := ix.NewReader(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert([]dataset.Item{0, 1}); err != nil {
		t.Fatal(err)
	}
	got, err := old.Subset([]dataset.Item{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("old reader sees %d answers, want the pre-insert 1", len(got))
	}
	fresh, err := ix.NewReader(8)
	if err != nil {
		t.Fatal(err)
	}
	got, err = fresh.Subset([]dataset.Item{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("fresh reader sees %d answers, want 2", len(got))
	}
}

// TestReaderStatsIsolated verifies readers meter independently.
func TestReaderStatsIsolated(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 2000, DomainSize: 40, MinLen: 2, MaxLen: 6, ZipfTheta: 0.8, Seed: 92,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ix.NewReader(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.NewReader(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Subset([]dataset.Item{1, 2}); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Misses == 0 {
		t.Fatal("reader a recorded nothing")
	}
	if b.Stats().Misses != 0 {
		t.Fatal("reader b's stats polluted by reader a")
	}
	a.ResetStats()
	if a.Stats().Misses != 0 {
		t.Fatal("reset failed")
	}
}
