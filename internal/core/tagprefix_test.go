package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/storage"
)

// TestTagPrefixCorrectness verifies every predicate against the oracle
// for a range of prefix lengths, including aggressive truncation.
func TestTagPrefixCorrectness(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 3000, DomainSize: 60, MinLen: 1, MaxLen: 9, ZipfTheta: 0.9, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, prefix := range []int{1, 2, 4, 8} {
		ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8, TagPrefix: prefix})
		if err != nil {
			t.Fatalf("prefix %d: %v", prefix, err)
		}
		rng := rand.New(rand.NewSource(56))
		for trial := 0; trial < 120; trial++ {
			k := 1 + rng.Intn(5)
			qs := make([]dataset.Item, k)
			for i := range qs {
				qs[i] = dataset.Item(rng.Intn(60))
			}
			got, err := ix.Subset(qs)
			if err != nil {
				t.Fatal(err)
			}
			if want := naive.Subset(d, qs); !equalIDs(got, want) {
				t.Fatalf("prefix %d: Subset(%v) = %v, want %v", prefix, qs, got, want)
			}
			got, err = ix.Equality(qs)
			if err != nil {
				t.Fatal(err)
			}
			if want := naive.Equality(d, qs); !equalIDs(got, want) {
				t.Fatalf("prefix %d: Equality(%v) = %v, want %v", prefix, qs, got, want)
			}
			got, err = ix.Superset(qs)
			if err != nil {
				t.Fatal(err)
			}
			if want := naive.Superset(d, qs); !equalIDs(got, want) {
				t.Fatalf("prefix %d: Superset(%v) = %v, want %v", prefix, qs, got, want)
			}
		}
	}
}

// TestTagPrefixShrinksKeys pins the intended effect: shorter prefixes,
// smaller keys, smaller tree — at some cost in extra block reads.
func TestTagPrefixShrinksKeys(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 20000, DomainSize: 200, MinLen: 4, MaxLen: 16, ZipfTheta: 0.8, Seed: 57,
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(d, Options{PageSize: 4096, BlockPostings: 64})
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := Build(d, Options{PageSize: 4096, BlockPostings: 64, TagPrefix: 2})
	if err != nil {
		t.Fatal(err)
	}
	if trunc.Space().KeyBytes >= full.Space().KeyBytes {
		t.Fatalf("prefix keys %d >= full keys %d", trunc.Space().KeyBytes, full.Space().KeyBytes)
	}
	if trunc.Space().TreePages > full.Space().TreePages {
		t.Fatalf("prefix tree %d pages > full tree %d", trunc.Space().TreePages, full.Space().TreePages)
	}

	// Equality point lookups stay cheap even with 2-rank tags.
	pool := storage.NewBufferPool(trunc.Pool().Pager(), 8)
	if err := trunc.SetPool(pool); err != nil {
		t.Fatal(err)
	}
	r := d.Record(777)
	pool.ResetStats()
	got, err := trunc.Equality(r.Set)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("lost the record")
	}
	if misses := pool.Stats().Misses; misses > int64(len(r.Set)*8+16) {
		t.Fatalf("equality with truncated tags cost %d pages", misses)
	}
}

// TestTagPrefixSnapshotRoundTrip ensures the option survives Save/Load.
func TestTagPrefixSnapshotRoundTrip(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 800, DomainSize: 40, MinLen: 2, MaxLen: 8, ZipfTheta: 0.8, Seed: 58,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 8, TagPrefix: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	qs := d.Record(10).Set
	a, err := ix.Subset(qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Subset(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(a, b) {
		t.Fatal("truncated-tag index diverged after reload")
	}
}
