package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/naive"
	"repro/internal/sequence"
	"repro/internal/storage"
)

func paperFig1(t testing.TB) *dataset.Dataset {
	t.Helper()
	sets := [][]dataset.Item{
		{6, 1, 0, 3}, {0, 4, 1}, {5, 4, 0, 1}, {3, 1, 0}, {0, 1, 5, 2},
		{2, 0}, {3, 7}, {1, 0, 5}, {1, 2}, {9, 1, 6}, {0, 2, 1}, {8, 3},
		{0}, {0, 3}, {9, 2, 0}, {8, 2}, {0, 2, 7}, {3, 2},
	}
	d := dataset.New(10)
	for _, s := range sets {
		if _, err := d.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func buildSmall(t testing.TB, d *dataset.Dataset) *Index {
	t.Helper()
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMetadataPaperFig5 checks the metadata table against the paper's
// Fig. 5: a -> [1,12], b -> [13,14], c -> [15,16], d -> [17,18].
func TestMetadataPaperFig5(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	want := []Region{
		{L: 1, U: 12, U1: 1},   // a: records 1..12; singleton {a} is id 1
		{L: 13, U: 14, U1: 12}, // b: no singleton
		{L: 15, U: 16, U1: 14}, // c
		{L: 17, U: 18, U1: 16}, // d
	}
	for rank, w := range want {
		got := ix.meta.Regions[rank]
		if got != w {
			t.Errorf("region[%d] = %+v, want %+v", rank, got, w)
		}
	}
	// Ranks beyond d never begin a record in this dataset... e (rank 5 via
	// item 4) does not, but f (rank 4 via item 5) does not either: every
	// record containing them also contains a more frequent item.
	for rank := 4; rank < 10; rank++ {
		if !ix.meta.Regions[rank].Empty() {
			t.Errorf("region[%d] = %+v, want empty", rank, ix.meta.Regions[rank])
		}
	}
	if ix.meta.EmptyUpper != 0 {
		t.Errorf("EmptyUpper = %d, want 0", ix.meta.EmptyUpper)
	}
}

// TestPaperSubsetExample: qs = {a,d} must return the original records
// 101, 104, 114 (positions 1, 4, 14).
func TestPaperSubsetExample(t *testing.T) {
	ix := buildSmall(t, paperFig1(t))
	got, err := ix.Subset([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{1, 4, 14}) {
		t.Fatalf("Subset({a,d}) = %v, want [1 4 14]", got)
	}
}

// TestPaperSupersetExample: qs = {a,c} must return records 106 and 113.
func TestPaperSupersetExample(t *testing.T) {
	ix := buildSmall(t, paperFig1(t))
	got, err := ix.Superset([]dataset.Item{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{6, 13}) {
		t.Fatalf("Superset({a,c}) = %v, want [6 13]", got)
	}
}

// TestPaperSupersetACF walks the paper's Fig. 6 query {a,c,f}.
func TestPaperSupersetACF(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	got, err := ix.Superset([]dataset.Item{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := naive.Superset(d, []dataset.Item{0, 2, 5})
	if !equalIDs(got, want) {
		t.Fatalf("Superset({a,c,f}) = %v, want %v", got, want)
	}
}

func TestEqualityPaperData(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	for i := 0; i < d.Len(); i++ {
		r := d.Record(i)
		got, err := ix.Equality(r.Set)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Equality(d, r.Set)
		if !equalIDs(got, want) {
			t.Fatalf("Equality(%v) = %v, want %v", r.Set, got, want)
		}
	}
}

func TestAllPredicatesAgainstNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 4000, DomainSize: 60, MinLen: 1, MaxLen: 9, ZipfTheta: 0.9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildSmall(t, d)
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(6)
		qs := make([]dataset.Item, k)
		for i := range qs {
			qs[i] = dataset.Item(rng.Intn(60))
		}
		got, err := ix.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Subset(d, qs); !equalIDs(got, want) {
			t.Fatalf("Subset(%v) = %v, want %v", qs, got, want)
		}
		got, err = ix.Equality(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Equality(d, qs); !equalIDs(got, want) {
			t.Fatalf("Equality(%v) = %v, want %v", qs, got, want)
		}
		got, err = ix.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Superset(d, qs); !equalIDs(got, want) {
			t.Fatalf("Superset(%v) = %v, want %v", qs, got, want)
		}
	}
}

// TestSkewedDatasetWithDuplicates drives the msweb twin shape: heavy skew
// plus exact duplicate records spanning block boundaries.
func TestSkewedDatasetWithDuplicates(t *testing.T) {
	d, err := dataset.GenerateMSWeb(dataset.MSWebConfig{BaseRecords: 500, Replicas: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 512, BlockPostings: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		r := d.Record(rng.Intn(d.Len()))
		if len(r.Set) == 0 {
			continue
		}
		got, err := ix.Equality(r.Set)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.Equality(d, r.Set)
		if !equalIDs(got, want) {
			t.Fatalf("Equality(%v) = %v, want %v", r.Set, got, want)
		}
		if len(got) < 10 {
			t.Fatalf("replicated record has %d equality answers, want >= 10", len(got))
		}
		qs := r.Set[:1+rng.Intn(len(r.Set))]
		gotS, err := ix.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Subset(d, qs); !equalIDs(gotS, want) {
			t.Fatalf("Subset(%v) wrong", qs)
		}
	}
}

func TestEmptySetRecords(t *testing.T) {
	d := dataset.New(5)
	d.Add([]dataset.Item{0, 1})
	d.Add(nil)
	d.Add([]dataset.Item{2})
	d.Add(nil)
	ix := buildSmall(t, d)
	if ix.meta.EmptyUpper != 2 {
		t.Fatalf("EmptyUpper = %d, want 2 (two empty records)", ix.meta.EmptyUpper)
	}
	sup, err := ix.Superset([]dataset.Item{2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sup, []uint32{2, 3, 4}) {
		t.Fatalf("Superset({2}) = %v, want empty records 2,4 plus record 3", sup)
	}
	eq, err := ix.Equality(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(eq, []uint32{2, 4}) {
		t.Fatalf("Equality(∅) = %v", eq)
	}
	sub, err := ix.Subset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 4 {
		t.Fatalf("Subset(∅) = %v, want all 4", sub)
	}
}

func TestSingleItemQueries(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 2000, DomainSize: 40, MinLen: 1, MaxLen: 8, ZipfTheta: 1.0, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildSmall(t, d)
	for it := dataset.Item(0); it < 40; it++ {
		qs := []dataset.Item{it}
		got, err := ix.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Subset(d, qs); !equalIDs(got, want) {
			t.Fatalf("Subset({%d}) = %d ids, want %d", it, len(got), len(want))
		}
		got, err = ix.Equality(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Equality(d, qs); !equalIDs(got, want) {
			t.Fatalf("Equality({%d}) = %v, want %v", it, got, want)
		}
		got, err = ix.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Superset(d, qs); !equalIDs(got, want) {
			t.Fatalf("Superset({%d}) = %v, want %v", it, got, want)
		}
	}
}

func TestQueryValidationAndDuplicates(t *testing.T) {
	ix := buildSmall(t, paperFig1(t))
	if _, err := ix.Subset([]dataset.Item{99}); err == nil {
		t.Error("out-of-domain item accepted")
	}
	a, err := ix.Subset([]dataset.Item{3, 0, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.Subset([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(a, b) {
		t.Error("duplicate/unsorted query items changed the answer")
	}
}

// TestEqualityIsCheapInPages verifies §4.2's complexity claim: an
// equality query touches O(|qs| * height) pages regardless of list size,
// while the IF-style full-list read would be far larger.
func TestEqualityIsCheapInPages(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 30000, DomainSize: 50, MinLen: 2, MaxLen: 8, ZipfTheta: 0.9, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 4096, BlockPostings: 64})
	if err != nil {
		t.Fatal(err)
	}
	small := storage.NewBufferPool(ix.Pool().Pager(), storage.DefaultPoolPages)
	if err := ix.SetPool(small); err != nil {
		t.Fatal(err)
	}
	r := d.Record(1234)
	small.ResetStats()
	if _, err := ix.Equality(r.Set); err != nil {
		t.Fatal(err)
	}
	misses := small.Stats().Misses
	// Generous bound: |qs| point lookups of a 3-level tree plus slack.
	bound := int64(len(r.Set)*6 + 8)
	if misses > bound {
		t.Fatalf("equality query cost %d page accesses, want <= %d", misses, bound)
	}
}

// TestSubsetPrunesVersusFullScan verifies the core OIF claim: a selective
// subset query reads far fewer pages than the total size of the involved
// lists.
func TestSubsetPrunesVersusFullScan(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 30000, DomainSize: 500, MinLen: 2, MaxLen: 12, ZipfTheta: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{PageSize: 4096, BlockPostings: 64})
	if err != nil {
		t.Fatal(err)
	}
	small := storage.NewBufferPool(ix.Pool().Pager(), storage.DefaultPoolPages)
	if err := ix.SetPool(small); err != nil {
		t.Fatal(err)
	}
	// A 4-item query from an existing record with a rare item: highly
	// selective, so the RoI should prune hard.
	var qs []dataset.Item
	for i := 0; i < d.Len(); i++ {
		r := d.Record(i)
		if len(r.Set) >= 4 {
			rare := false
			for _, it := range r.Set {
				if ix.ord.MustRank(it) > 400 {
					rare = true
				}
			}
			if rare {
				qs = r.Set[:4]
				break
			}
		}
	}
	if qs == nil {
		t.Skip("no suitable record found")
	}
	small.ResetStats()
	got, err := ix.Subset(qs)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.Subset(d, qs)
	if !equalIDs(got, want) {
		t.Fatalf("Subset(%v) = %v, want %v", qs, got, want)
	}
	misses := small.Stats().Misses
	treePages := ix.tree.Pool().Pager().NumPages()
	if misses*4 > treePages {
		t.Fatalf("subset query read %d of %d pages; RoI pruning not effective", misses, treePages)
	}
}

func TestInsertDeltaAndMerge(t *testing.T) {
	d := paperFig1(t)
	ix := buildSmall(t, d)
	id, err := ix.Insert([]dataset.Item{0, 3}) // {a,d}
	if err != nil {
		t.Fatal(err)
	}
	if id != 19 {
		t.Fatalf("inserted id = %d, want 19", id)
	}
	got, err := ix.Subset([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{1, 4, 14, 19}) {
		t.Fatalf("Subset after insert = %v", got)
	}
	if err := ix.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	if ix.DeltaLen() != 0 || ix.NumRecords() != 19 {
		t.Fatalf("after merge: delta %d, records %d", ix.DeltaLen(), ix.NumRecords())
	}
	got, err = ix.Subset([]dataset.Item{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, []uint32{1, 4, 14, 19}) {
		t.Fatalf("Subset after merge = %v", got)
	}
}

func TestMergeDeltaMatchesFreshBuild(t *testing.T) {
	base, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 800, DomainSize: 40, MinLen: 1, MaxLen: 8, ZipfTheta: 0.7, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 200, DomainSize: 40, MinLen: 1, MaxLen: 8, ZipfTheta: 0.7, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildSmall(t, base)
	merged := dataset.New(40)
	for _, r := range base.Records() {
		merged.Add(r.Set)
	}
	for _, r := range extra.Records() {
		if _, err := ix.Insert(r.Set); err != nil {
			t.Fatal(err)
		}
		merged.Add(r.Set)
	}
	if err := ix.MergeDelta(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		k := 1 + rng.Intn(4)
		qs := make([]dataset.Item, k)
		for i := range qs {
			qs[i] = dataset.Item(rng.Intn(40))
		}
		got, err := ix.Subset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Subset(merged, qs); !equalIDs(got, want) {
			t.Fatalf("post-merge Subset(%v) = %v, want %v", qs, got, want)
		}
		got, err = ix.Superset(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Superset(merged, qs); !equalIDs(got, want) {
			t.Fatalf("post-merge Superset(%v) = %v, want %v", qs, got, want)
		}
		got, err = ix.Equality(qs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naive.Equality(merged, qs); !equalIDs(got, want) {
			t.Fatalf("post-merge Equality(%v) = %v, want %v", qs, got, want)
		}
	}
}

func TestSpaceStats(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 2000, DomainSize: 100, MinLen: 2, MaxLen: 10, ZipfTheta: 0.8, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildSmall(t, d)
	s := ix.Space()
	if s.Blocks == 0 || s.PostingBytes == 0 || s.KeyBytes == 0 {
		t.Fatalf("space stats empty: %+v", s)
	}
	if s.TreeBytes != s.TreePages*512 {
		t.Fatalf("TreeBytes inconsistent: %+v", s)
	}
	st := d.ComputeStats()
	// Metadata saves one posting per non-empty record: stored postings
	// must equal total postings minus number of non-empty records.
	var stored int64
	for _, c := range ix.listPostings {
		stored += c
	}
	wantStored := st.TotalPostings - int64(st.NumRecords-st.EmptyRecords)
	if stored != wantStored {
		t.Fatalf("stored postings = %d, want %d (metadata must absorb one per record)", stored, wantStored)
	}
}

// TestMetadataRegionInvariants checks Theorem 1 on generated data: the
// regions partition the non-empty id space contiguously in rank order.
func TestMetadataRegionInvariants(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 3000, DomainSize: 50, MinLen: 1, MaxLen: 6, ZipfTheta: 0.8, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := buildSmall(t, d)
	next := ix.meta.EmptyUpper + 1
	for rank := 0; rank < 50; rank++ {
		reg := ix.meta.Regions[rank]
		if reg.Empty() {
			continue
		}
		if reg.L != next {
			t.Fatalf("region[%d] starts at %d, want %d (contiguity)", rank, reg.L, next)
		}
		if reg.U < reg.L || reg.U1 > reg.U || reg.U1 < reg.L-1 {
			t.Fatalf("region[%d] malformed: %+v", rank, reg)
		}
		// Every record in the region has this rank as smallest.
		for id := reg.L; id <= reg.U; id++ {
			sf := ix.re.SF(id)
			if len(sf) == 0 || sf[0] != sequence.Rank(rank) {
				t.Fatalf("record %d in region[%d] has sf %v", id, rank, sf)
			}
			if (len(sf) == 1) != (id <= reg.U1) {
				t.Fatalf("record %d cardinality-1 flag disagrees with U1=%d", id, reg.U1)
			}
		}
		next = reg.U + 1
	}
	if next != uint32(d.Len())+1 {
		t.Fatalf("regions cover up to %d, want %d", next-1, d.Len())
	}
}
