package core

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/btree"
	"repro/internal/dataset"
	"repro/internal/sequence"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/vbyte"
)

// Options configures Build.
type Options struct {
	// PageSize of the B-tree file; 0 selects storage.DefaultPageSize.
	PageSize int
	// BlockPostings caps the postings per inverted-list block; 0 selects
	// DefaultBlockPostings. Smaller blocks mean finer pruning but more
	// B-tree entries (the paper's block size / space trade-off).
	BlockPostings int
	// BuildPoolPages sizes the buffer pool used during construction;
	// 0 selects 1024. Swap in a small pool with SetPool to measure.
	BuildPoolPages int
	// TagPrefix truncates block tags to this many leading ranks
	// (0 keeps full tags). The paper suggests it to shrink keys (§3:
	// "considering prefixes of the ordered set-values used as tags").
	// Truncation is sound: prefixes preserve the ordering's <= relation,
	// so lower-bound seeks can only start earlier and upper-bound stops
	// can only stop later — trading a few extra block reads for smaller
	// keys. Query probes are truncated to the same length.
	TagPrefix int
	// Pool, when non-nil, receives the index pages instead of a fresh
	// in-memory pager; its pager must be empty. This is how file-backed
	// indexes are built (pass a pool over a storage.FilePager).
	Pool *storage.BufferPool
	// DecodedCachePostings sizes the decoded-block cache in postings
	// (0 disables it). The cache keeps hot inverted-list blocks in
	// decoded form so repeat visits skip the vbyte decode; admission is
	// weighted by the item-frequency profile when it is skewed (see
	// decodedCache). Disabled by default at this level so the paper's
	// I/O measurements — which re-decode from page bytes like the
	// original implementation — stay faithful; the public setcontain
	// layer enables it by default.
	DecodedCachePostings int
}

// DefaultBlockPostings mirrors a block of roughly half a 4 KB page with
// ~2-byte compressed postings.
const DefaultBlockPostings = 64

func (o *Options) fill() {
	if o.PageSize <= 0 {
		o.PageSize = storage.DefaultPageSize
	}
	if o.BlockPostings <= 0 {
		o.BlockPostings = DefaultBlockPostings
	}
	if o.BuildPoolPages <= 0 {
		o.BuildPoolPages = 1024
	}
}

// Index is a built OIF.
type Index struct {
	tree *btree.BTree
	ord  *sequence.Order
	re   *sequence.Reordered
	meta *Metadata

	numRecords int
	domainSize int
	opts       Options

	// Space accounting.
	blocks       int64
	postingBytes int64
	keyBytes     int64
	listPostings []int64 // per rank, postings stored in its list

	delta []dataset.Record // §4.4 memory-resident delta, original-id space

	// dead is the tombstone set: sorted original-space ids of deleted
	// records, masked out of every answer. The slice is immutable once
	// attached — Delete installs a fresh copy — so Reader clones can
	// share it safely. deadDirty records that some tombstoned postings
	// are still physically present (on disk or in the delta) and will be
	// folded out by the next MergeDelta; the ids themselves stay
	// tombstoned forever, because record ids are never reused.
	dead      []uint32
	deadDirty bool

	// Per-instance query runtime, attached lazily by ensureRuntime and
	// never shared between an Index and its Reader clones.
	arena  *queryArena
	dcache *decodedCache
}

// ErrRecordTooWide reports a record whose block key cannot fit a page.
var ErrRecordTooWide = errors.New("core: record cardinality too large for page size")

// Build constructs the OIF for d.
func Build(d *dataset.Dataset, opts Options) (*Index, error) {
	opts.fill()
	ord := sequence.OrderFromDataset(d)
	re, err := sequence.Reorder(d, ord)
	if err != nil {
		return nil, err
	}
	return build(d.Len(), d.DomainSize(), ord, re, opts)
}

// build assembles the index from a prepared ordering; shared by Build and
// MergeDelta. Blocks are first assembled per rank in id order and then
// bulk-loaded into the B-tree in global key order, so every list's blocks
// occupy physically consecutive leaves — the layout the paper's RoI scans
// assume (Berkeley DB files built this way show the same locality).
func build(numRecords, domainSize int, ord *sequence.Order, re *sequence.Reordered, opts Options) (*Index, error) {
	pool := opts.Pool
	if pool == nil {
		pool = storage.NewBufferPool(storage.NewMemPager(opts.PageSize), opts.BuildPoolPages)
	} else if pool.PageSize() != opts.PageSize && opts.PageSize != storage.DefaultPageSize {
		return nil, fmt.Errorf("core: Pool page size %d != PageSize %d", pool.PageSize(), opts.PageSize)
	}
	opts.PageSize = pool.PageSize()
	opts.Pool = nil // never reuse across rebuilds (MergeDelta)
	ix := &Index{
		ord:          ord,
		re:           re,
		meta:         newMetadata(domainSize),
		numRecords:   numRecords,
		domainSize:   domainSize,
		opts:         opts,
		listPostings: make([]int64, domainSize),
	}

	// Per-rank pending postings plus finished encoded blocks.
	type rankBlocks struct {
		postings []vbyte.Posting
		keys     [][]byte
		vals     [][]byte
	}
	pend := make([]rankBlocks, domainSize)
	flush := func(rank sequence.Rank) error {
		p := &pend[rank]
		if len(p.postings) == 0 {
			return nil
		}
		last := p.postings[len(p.postings)-1]
		key := blockKey(rank, ix.truncTag(ix.re.SF(last.ID)), last.ID)
		val, err := vbyte.AppendPostings(nil, p.postings, 0)
		if err != nil {
			return err
		}
		p.keys = append(p.keys, key)
		p.vals = append(p.vals, val)
		ix.blocks++
		ix.postingBytes += int64(len(val))
		ix.keyBytes += int64(len(key))
		p.postings = p.postings[:0]
		return nil
	}

	for id := uint32(1); id <= uint32(numRecords); id++ {
		sf := re.SF(id)
		if len(sf) == 0 {
			ix.meta.noteEmpty(id)
			continue
		}
		ix.meta.note(sf[0], id, len(sf))
		// The smallest rank is represented only by the metadata region;
		// every other rank gets a posting (§3: "for every record we avoid
		// creating a posting for its most frequent item").
		for _, r := range sf[1:] {
			p := &pend[r]
			p.postings = append(p.postings, vbyte.Posting{ID: id, Length: uint32(len(sf))})
			ix.listPostings[r]++
			if len(p.postings) >= opts.BlockPostings {
				if err := flush(r); err != nil {
					return nil, err
				}
			}
		}
	}
	for rank := 0; rank < domainSize; rank++ {
		if err := flush(sequence.Rank(rank)); err != nil {
			return nil, err
		}
	}

	// Bulk-load in (rank, tag, id) order: ranks ascend, and within a rank
	// blocks were produced in id (= tag) order.
	curRank, curIdx := 0, 0
	tree, err := btree.BulkLoad(pool, func() ([]byte, []byte, bool, error) {
		for curRank < domainSize && curIdx >= len(pend[curRank].keys) {
			curRank++
			curIdx = 0
		}
		if curRank >= domainSize {
			return nil, nil, false, nil
		}
		k := pend[curRank].keys[curIdx]
		v := pend[curRank].vals[curIdx]
		curIdx++
		return k, v, true, nil
	}, 90)
	if err != nil {
		if errors.Is(err, btree.ErrKeyTooLarge) {
			return nil, fmt.Errorf("%w: page size %d", ErrRecordTooWide, opts.PageSize)
		}
		return nil, err
	}
	ix.tree = tree
	return ix, nil
}

// truncTag applies the configured TagPrefix to a sequence form.
func (ix *Index) truncTag(sf []sequence.Rank) []sequence.Rank {
	if ix.opts.TagPrefix > 0 && len(sf) > ix.opts.TagPrefix {
		return sf[:ix.opts.TagPrefix]
	}
	return sf
}

// SetPool swaps the measurement buffer pool (same backing pager).
func (ix *Index) SetPool(pool *storage.BufferPool) error { return ix.tree.SetPool(pool) }

// Pool returns the current buffer pool.
func (ix *Index) Pool() *storage.BufferPool { return ix.tree.Pool() }

// Order exposes the item order (examples and tests use it).
func (ix *Index) Order() *sequence.Order { return ix.ord }

// Metadata exposes the metadata table (read-only).
func (ix *Index) Metadata() *Metadata { return ix.meta }

// NumRecords returns the number of indexed records including the delta.
func (ix *Index) NumRecords() int { return ix.numRecords + len(ix.delta) }

// DomainSize returns |I|.
func (ix *Index) DomainSize() int { return ix.domainSize }

// SpaceStats reports the index's storage footprint, matching the
// quantities discussed in §5 "Space overhead".
type SpaceStats struct {
	Blocks       int64 // B-tree entries (one per list block)
	PostingBytes int64 // compressed postings across all blocks
	KeyBytes     int64 // total key bytes (item + tag + id)
	TreePages    int64 // pages allocated by the B-tree file
	TreeBytes    int64 // TreePages * page size
	MetaBytes    int64 // memory-resident metadata table
	MapBytes     int64 // reassignment map (new id <-> original position)
}

// Space returns the current footprint.
func (ix *Index) Space() SpaceStats {
	pages := ix.tree.Pool().Pager().NumPages()
	return SpaceStats{
		Blocks:       ix.blocks,
		PostingBytes: ix.postingBytes,
		KeyBytes:     ix.keyBytes,
		TreePages:    pages,
		TreeBytes:    pages * int64(ix.tree.Pool().PageSize()),
		MetaBytes:    ix.meta.Bytes(),
		MapBytes:     ix.re.MapBytes(),
	}
}

// origID maps a new id to the original record id (1-based position in the
// source dataset).
func (ix *Index) origID(newID uint32) uint32 { return uint32(ix.re.OrigIndex(newID)) + 1 }

// mapToOriginal converts new-id results to sorted original ids appended
// to dst (whose existing contents are untouched — only the appended
// region is sorted), masking tombstoned records and adding matching
// delta records.
func (ix *Index) mapToOriginal(dst, newIDs []uint32, q []sequence.Rank, pred deltaPred) []uint32 {
	start := len(dst)
	dst = slices.Grow(dst, len(newIDs))
	if len(ix.dead) == 0 {
		for _, id := range newIDs {
			dst = append(dst, ix.origID(id))
		}
	} else {
		for _, id := range newIDs {
			if oid := ix.origID(id); !ix.isDead(oid) {
				dst = append(dst, oid)
			}
		}
	}
	dst = ix.appendDelta(dst, q, pred)
	slices.Sort(dst[start:])
	return dst
}

// isDead reports whether the original-space id is tombstoned.
func (ix *Index) isDead(id uint32) bool {
	_, ok := slices.BinarySearch(ix.dead, id)
	return ok
}

// Deleted returns the number of tombstoned records.
func (ix *Index) Deleted() int { return len(ix.dead) }

// prepRanks canonicalises a query set into the arena: validated,
// converted to ranks, sorted ascending, deduplicated. The returned slice
// is arena-owned and valid until the next query on this instance.
func (ix *Index) prepRanks(qs []dataset.Item) ([]sequence.Rank, error) {
	ranks := ix.arena.ranks[:0]
	for _, it := range qs {
		r, err := ix.ord.Rank(it)
		if err != nil {
			return nil, err
		}
		ranks = append(ranks, r)
	}
	slices.Sort(ranks)
	out := ranks[:0]
	for i, r := range ranks {
		if i == 0 || r != out[len(out)-1] {
			out = append(out, r)
		}
	}
	ix.arena.ranks = ranks
	return out, nil
}

// profileSkewed reports whether the index's per-list posting counts form
// a skewed (Zipf-like) distribution — the signal that weighted admission
// in the decoded cache will pay off. The counts omit each record's most
// frequent item (those postings live in the metadata table), which only
// flattens the curve slightly.
func (ix *Index) profileSkewed() bool {
	return stats.ProfileOfSupports(ix.listPostings, 0).Skewed()
}

// ItemSupports returns the per-item support table of the merged index:
// index = item id, value = number of disk-resident records containing
// the item. A record's most frequent item carries no posting in its
// rank's list (it is represented by the rank's metadata region), so the
// support is the list's posting count plus the region width. Pending
// delta inserts and tombstones are not reflected — the table is a
// planning estimate, refreshed by MergeDelta, not an answer.
func (ix *Index) ItemSupports() []int64 {
	supports := make([]int64, ix.domainSize)
	items := ix.ord.Items()
	for rank, n := range ix.listPostings {
		if reg := ix.meta.Regions[rank]; !reg.Empty() {
			n += int64(reg.U-reg.L) + 1
		}
		supports[items[rank]] = n
	}
	return supports
}

// DecodedStats reports the decoded-block cache's effectiveness (zeroes
// when the cache is disabled).
func (ix *Index) DecodedStats() DecodedCacheStats {
	if ix.dcache == nil {
		return DecodedCacheStats{}
	}
	return ix.dcache.Stats()
}
