// Package liststore implements the physical layout of the classic
// inverted file: each item's compressed inverted list stored contiguously
// on disk, with a memory-resident vocabulary mapping items to their
// extents. This is the paper's IF baseline implementation scheme (§5):
// "each tuple has as key value an item o from I and as data value the
// whole inverted list associated with o" — and, crucially, "Berkeley DB
// always retrieves the whole tuple, i.e. there is no way to retrieve a
// part of the inverted list".
//
// Reading a list therefore streams every one of its pages through the
// buffer pool, which charges one sequential miss per page after the
// initial (random) positioning — exactly the IF cost profile the paper
// measures.
package liststore

import (
	"errors"
	"fmt"

	"repro/internal/storage"
)

// Extent locates one list in the page file. Lists are packed contiguously
// — a list may begin mid-page, as Berkeley DB packs small tuples into
// shared pages — so an extent is a (page, offset, length) triple.
type Extent struct {
	StartPage storage.PageID
	StartByte int   // offset within StartPage
	ByteLen   int64 // 0 for an absent/empty list
}

// Pages returns the number of pages the extent touches.
func (e Extent) Pages(pageSize int) int64 {
	if e.ByteLen == 0 {
		return 0
	}
	first := int64(e.StartByte)
	return (first+e.ByteLen+int64(pageSize)-1)/int64(pageSize) - first/int64(pageSize)
}

// Store is a write-once collection of contiguous byte extents, one per
// item. Build all lists with a Writer, then read them back by item.
type Store struct {
	pool    *storage.BufferPool
	extents []Extent
	sealed  bool
}

// ErrNotSealed reports reads before the writer finished.
var ErrNotSealed = errors.New("liststore: store not sealed")

// ErrNoList reports an item with no stored list.
var ErrNoList = errors.New("liststore: item has no list")

// New returns an empty store over pool with capacity for domainSize items.
// The pool's pager must be empty (page ids are assumed to start at 0).
func New(pool *storage.BufferPool, domainSize int) (*Store, error) {
	if pool.Pager().NumPages() != 0 {
		return nil, errors.New("liststore: New requires an empty pager")
	}
	ext := make([]Extent, domainSize)
	for i := range ext {
		ext[i].StartPage = storage.InvalidPageID
	}
	return &Store{pool: pool, extents: ext}, nil
}

// SetPool swaps the buffer pool, keeping the same pager (build big,
// measure small — see btree.SetPool).
func (s *Store) SetPool(pool *storage.BufferPool) error {
	if pool.Pager() != s.pool.Pager() {
		return errors.New("liststore: SetPool requires the same backing pager")
	}
	if err := s.pool.Flush(); err != nil {
		return err
	}
	s.pool = pool
	return nil
}

// Pool returns the current buffer pool.
func (s *Store) Pool() *storage.BufferPool { return s.pool }

// Writer appends lists back to back, packing them contiguously into
// pages. Each list stays contiguous on disk (the paper's IF layout); a
// new list continues on the current partially filled page.
type Writer struct {
	s      *Store
	cur    storage.PageID // current page, InvalidPageID before first write
	used   int            // bytes used on the current page
	closed bool
}

// NewWriter starts bulk-building the store's lists.
func (s *Store) NewWriter() (*Writer, error) {
	if s.sealed {
		return nil, errors.New("liststore: store already sealed")
	}
	return &Writer{s: s, cur: storage.InvalidPageID}, nil
}

// WriteList stores data as item's list. Items may be written in any
// order, but each item at most once. An empty list is recorded with a
// zero-length extent and occupies no pages.
func (w *Writer) WriteList(item uint32, data []byte) error {
	if w.closed {
		return errors.New("liststore: writer closed")
	}
	if int(item) >= len(w.s.extents) {
		return fmt.Errorf("liststore: item %d outside domain %d", item, len(w.s.extents))
	}
	if w.s.extents[item].StartPage != storage.InvalidPageID || w.s.extents[item].ByteLen > 0 {
		return fmt.Errorf("liststore: duplicate list for item %d", item)
	}
	if len(data) == 0 {
		w.s.extents[item] = Extent{StartPage: storage.InvalidPageID, ByteLen: 0}
		return nil
	}
	pageSize := w.s.pool.PageSize()
	ext := Extent{ByteLen: int64(len(data))}
	remaining := data
	first := true
	for len(remaining) > 0 {
		if w.cur == storage.InvalidPageID || w.used == pageSize {
			id, _, err := w.s.pool.Allocate()
			if err != nil {
				return err
			}
			w.s.pool.Put(id)
			w.cur = id
			w.used = 0
		}
		if first {
			ext.StartPage = w.cur
			ext.StartByte = w.used
			first = false
		}
		page, err := w.s.pool.Get(w.cur)
		if err != nil {
			return err
		}
		n := copy(page[w.used:], remaining)
		w.s.pool.MarkDirty(w.cur)
		w.s.pool.Put(w.cur)
		remaining = remaining[n:]
		w.used += n
	}
	w.s.extents[item] = ext
	return nil
}

// Close seals the store for reading.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.s.sealed = true
	return w.s.pool.Flush()
}

// Has reports whether item has a non-empty list.
func (s *Store) Has(item uint32) bool {
	return int(item) < len(s.extents) && s.extents[item].ByteLen > 0
}

// Extent returns item's extent (vocabulary lookup; memory-resident, free).
func (s *Store) Extent(item uint32) (Extent, error) {
	if int(item) >= len(s.extents) {
		return Extent{}, fmt.Errorf("liststore: item %d outside domain %d", item, len(s.extents))
	}
	return s.extents[item], nil
}

// ReadList returns a copy of item's full list, streaming all of its pages
// through the buffer pool. Reading an empty list returns (nil, nil).
func (s *Store) ReadList(item uint32) ([]byte, error) {
	if !s.sealed {
		return nil, ErrNotSealed
	}
	ext, err := s.Extent(item)
	if err != nil {
		return nil, err
	}
	if ext.ByteLen == 0 {
		return nil, nil
	}
	out := make([]byte, 0, ext.ByteLen)
	pageSize := s.pool.PageSize()
	remaining := ext.ByteLen
	offset := ext.StartByte
	for pg := ext.StartPage; remaining > 0; pg++ {
		data, err := s.pool.Get(pg)
		if err != nil {
			return nil, err
		}
		n := int64(pageSize - offset)
		if remaining < n {
			n = remaining
		}
		out = append(out, data[offset:int64(offset)+n]...)
		s.pool.Put(pg)
		remaining -= n
		offset = 0
	}
	return out, nil
}

// TotalBytes returns the summed byte length of all lists (space
// accounting for the experiments).
func (s *Store) TotalBytes() int64 {
	var total int64
	for _, e := range s.extents {
		total += e.ByteLen
	}
	return total
}

// TotalPages returns the number of pages allocated to the store's file.
// Lists are packed, so this is the true disk footprint rather than the
// sum of per-extent page spans (which may share boundary pages).
func (s *Store) TotalPages() int64 { return s.pool.Pager().NumPages() }

// View returns a read-only handle on the same sealed lists through a
// different buffer pool over the same pager. Views isolate all mutable
// state (cache frames, statistics), enabling concurrent readers.
func (s *Store) View(pool *storage.BufferPool) (*Store, error) {
	if pool.Pager() != s.pool.Pager() {
		return nil, errors.New("liststore: View requires the same backing pager")
	}
	if !s.sealed {
		return nil, ErrNotSealed
	}
	return &Store{pool: pool, extents: s.extents, sealed: true}, nil
}
