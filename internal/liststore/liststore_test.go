package liststore

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

func newStore(t *testing.T, pageSize, poolPages, domain int) *Store {
	t.Helper()
	pool := storage.NewBufferPool(storage.NewMemPager(pageSize), poolPages)
	s, err := New(pool, domain)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newStore(t, 128, 16, 5)
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	lists := map[uint32][]byte{
		0: bytes.Repeat([]byte{0xAA}, 300), // multi-page
		1: []byte("short"),
		2: nil,                             // empty
		3: bytes.Repeat([]byte{0xBB}, 128), // exactly one page
	}
	for item, data := range lists {
		if err := w.WriteList(item, data); err != nil {
			t.Fatalf("WriteList(%d): %v", item, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for item, want := range lists {
		got, err := s.ReadList(item)
		if err != nil {
			t.Fatalf("ReadList(%d): %v", item, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("ReadList(%d) = %d bytes, want %d", item, len(got), len(want))
		}
	}
	// Item 4 was never written: empty extent.
	got, err := s.ReadList(4)
	if err != nil || got != nil {
		t.Errorf("unwritten list = %v, %v", got, err)
	}
}

func TestReadBeforeSeal(t *testing.T) {
	s := newStore(t, 128, 16, 2)
	if _, err := s.NewWriter(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadList(0); err != ErrNotSealed {
		t.Fatalf("ReadList before seal: %v, want ErrNotSealed", err)
	}
}

func TestDuplicateListRejected(t *testing.T) {
	s := newStore(t, 128, 16, 2)
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteList(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteList(0, []byte("y")); err == nil {
		t.Fatal("duplicate WriteList succeeded")
	}
	if err := w.WriteList(7, []byte("x")); err == nil {
		t.Fatal("out-of-domain WriteList succeeded")
	}
}

func TestSequentialAccessPattern(t *testing.T) {
	// Reading one long list must cost 1 random + (pages-1) sequential
	// misses on a cold pool — the IF cost profile.
	pageSize := 128
	s := newStore(t, pageSize, 4, 2)
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{1}, pageSize*10)
	if err := w.WriteList(0, data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pool := storage.NewBufferPool(s.Pool().Pager(), 4)
	if err := s.SetPool(pool); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadList(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("list corrupted")
	}
	st := pool.Stats()
	if st.Misses != 10 {
		t.Fatalf("misses = %d, want 10", st.Misses)
	}
	if st.RandMisses != 1 || st.SeqMisses != 9 {
		t.Fatalf("stats %v, want 1 random + 9 sequential", st)
	}
}

func TestExtentAccounting(t *testing.T) {
	s := newStore(t, 100, 16, 3)
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteList(0, make([]byte, 250)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteList(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalBytes(); got != 350 {
		t.Fatalf("TotalBytes = %d, want 350", got)
	}
	// Lists are packed: 350 bytes over 100-byte pages = 4 pages.
	if got := s.TotalPages(); got != 4 {
		t.Fatalf("TotalPages = %d, want 4", got)
	}
	ext0, err := s.Extent(0)
	if err != nil {
		t.Fatal(err)
	}
	if ext0.Pages(100) != 3 {
		t.Fatalf("extent 0 spans %d pages, want 3", ext0.Pages(100))
	}
	// List 1 (100 bytes) starts mid-page after list 0's 250 bytes: it
	// begins at page 2 offset 50 and spans two pages.
	ext1, err := s.Extent(1)
	if err != nil {
		t.Fatal(err)
	}
	if ext1.StartPage != 2 || ext1.StartByte != 50 {
		t.Fatalf("extent 1 = %+v, want start page 2 offset 50", ext1)
	}
	if ext1.Pages(100) != 2 {
		t.Fatalf("extent 1 spans %d pages, want 2", ext1.Pages(100))
	}
	if !s.Has(0) || s.Has(2) {
		t.Fatal("Has wrong")
	}
}

func TestManyListsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const domain = 200
	s := newStore(t, 64, 256, domain)
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, domain)
	for item := 0; item < domain; item++ {
		n := rng.Intn(500)
		data := make([]byte, n)
		rng.Read(data)
		want[item] = data
		if err := w.WriteList(uint32(item), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Random-order reads through a tiny pool.
	small := storage.NewBufferPool(s.Pool().Pager(), 4)
	if err := s.SetPool(small); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		item := uint32(rng.Intn(domain))
		got, err := s.ReadList(item)
		if err != nil {
			t.Fatal(err)
		}
		w := want[item]
		if len(w) == 0 {
			if got != nil {
				t.Fatalf("item %d: got %d bytes, want empty", item, len(got))
			}
			continue
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("item %d corrupted", item)
		}
	}
}
