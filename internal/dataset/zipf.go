package dataset

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples items 0..n-1 with probability proportional to
// 1/(rank+1)^theta, so item 0 is the most frequent. Unlike math/rand's
// Zipf it accepts any theta >= 0 — the paper sweeps the Zipf order over
// {0, 0.4, 0.8, 1} (§5, "Data"), and theta = 0 degenerates to uniform.
//
// Sampling uses inverse transform over the precomputed CDF (binary
// search), which is exact and fast enough for the dataset sizes used here.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n items with exponent theta.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	inv := 1.0 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1.0
	return &Zipf{cdf: cdf}
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one item using rng.
func (z *Zipf) Sample(rng *rand.Rand) Item {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return Item(i)
}

// SampleDistinct draws k distinct items. k must not exceed N; it is
// clamped if it does. For k close to N it falls back to a weighted
// shuffle-free sweep to avoid rejection stalls on tiny vocabularies
// (msnbc has only 17 items).
func (z *Zipf) SampleDistinct(rng *rand.Rand, k int) []Item {
	n := len(z.cdf)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	// Rejection sampling is efficient while k << n.
	if k*3 <= n {
		seen := make(map[Item]struct{}, k)
		out := make([]Item, 0, k)
		for len(out) < k {
			it := z.Sample(rng)
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			out = append(out, it)
		}
		return out
	}
	// Dense fallback: include item i with probability proportional to its
	// weight until k are chosen, looping as needed.
	out := make([]Item, 0, k)
	chosen := make([]bool, n)
	for len(out) < k {
		it := z.Sample(rng)
		if !chosen[it] {
			chosen[it] = true
			out = append(out, it)
		} else {
			// Linear probe to the next unchosen item keeps the sweep
			// bounded when only a few remain.
			for d := 1; d < n; d++ {
				j := (int(it) + d) % n
				if !chosen[j] {
					chosen[j] = true
					out = append(out, Item(j))
					break
				}
			}
		}
	}
	return out
}

// Probability returns the sampling probability of item i (test helper).
func (z *Zipf) Probability(i Item) float64 {
	if int(i) >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
