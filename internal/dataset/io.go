package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is one record per line: space-separated decimal item
// ids. Lines starting with '#' are comments; the first non-comment line
// may be a header of the form "domain N" fixing the vocabulary size
// (otherwise it is inferred as max item + 1). Empty lines encode empty
// sets only after the header; leading empty lines are skipped.

// Write serialises d in the text format.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# set-valued dataset: %d records\n", d.Len()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "domain %d\n", d.DomainSize()); err != nil {
		return err
	}
	var sb strings.Builder
	for _, r := range d.Records() {
		sb.Reset()
		for i, it := range r.Set {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(strconv.FormatUint(uint64(it), 10))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var sets [][]Item
	domain := -1
	sawHeader := false
	line := 0
	maxItem := Item(0)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(text, "#") {
			continue
		}
		if !sawHeader {
			if text == "" {
				continue
			}
			if n, ok := strings.CutPrefix(text, "domain "); ok {
				v, err := strconv.Atoi(strings.TrimSpace(n))
				if err != nil || v < 0 {
					return nil, fmt.Errorf("dataset: line %d: bad domain header %q", line, text)
				}
				domain = v
				sawHeader = true
				continue
			}
			sawHeader = true // headerless file; fall through to parse
		}
		var set []Item
		if text != "" {
			fields := strings.Fields(text)
			set = make([]Item, 0, len(fields))
			for _, f := range fields {
				v, err := strconv.ParseUint(f, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad item %q", line, f)
				}
				it := Item(v)
				if it > maxItem {
					maxItem = it
				}
				set = append(set, it)
			}
		}
		sets = append(sets, set)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	if domain < 0 {
		if len(sets) == 0 {
			domain = 0
		} else {
			domain = int(maxItem) + 1
		}
	}
	d := New(domain)
	for i, set := range sets {
		if _, err := d.Add(set); err != nil {
			return nil, fmt.Errorf("dataset: record %d: %w", i+1, err)
		}
	}
	return d, nil
}
