package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMSWeb parses the UCI KDD "Anonymous Microsoft Web Data" ASCII
// format — the actual msweb dataset the paper evaluates on (§5). The
// format interleaves three record types:
//
//	A,<attrID>,<ignored>,"<title>","<url>"   a visitable area (vroot)
//	C,"<case>",<caseID>                      starts a user session
//	V,<attrID>,1                             a visit within the session
//
// Attribute ids are sparse (e.g. 1000-1297); they are remapped to dense
// items in first-appearance order and the titles become item labels.
// Sessions become records in file order. Lines of other types (I, D, N,
// T — dataset metadata) are ignored, as are comments.
//
// Use Replicate afterwards to mirror the paper's 10x replication.
func ReadMSWeb(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	remap := make(map[uint32]Item)
	var labels []string
	var sets [][]Item
	var current []Item
	inCase := false
	line := 0

	flush := func() {
		if inCase {
			sets = append(sets, current)
			current = nil
		}
	}

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		switch fields[0] {
		case "A":
			if len(fields) < 4 {
				return nil, fmt.Errorf("dataset: msweb line %d: short attribute line", line)
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: msweb line %d: attribute id %q", line, fields[1])
			}
			if _, dup := remap[uint32(id)]; dup {
				return nil, fmt.Errorf("dataset: msweb line %d: duplicate attribute %d", line, id)
			}
			remap[uint32(id)] = Item(len(labels))
			labels = append(labels, strings.Trim(fields[3], `"`))
		case "C":
			flush()
			inCase = true
		case "V":
			if !inCase {
				return nil, fmt.Errorf("dataset: msweb line %d: vote outside a case", line)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("dataset: msweb line %d: short vote line", line)
			}
			id, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: msweb line %d: vote id %q", line, fields[1])
			}
			item, ok := remap[uint32(id)]
			if !ok {
				return nil, fmt.Errorf("dataset: msweb line %d: vote for unknown attribute %d", line, id)
			}
			current = append(current, item)
		default:
			// I, D, N, T and any future metadata lines are skipped.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: msweb read: %w", err)
	}
	flush()

	d := New(len(labels))
	if len(labels) > 0 {
		if err := d.SetLabels(labels); err != nil {
			return nil, err
		}
	}
	for i, set := range sets {
		if _, err := d.Add(set); err != nil {
			return nil, fmt.Errorf("dataset: msweb record %d: %w", i+1, err)
		}
	}
	return d, nil
}

// Replicate returns a new dataset holding n copies of d's records, the
// paper's device for growing msweb into a 10-week log ("this replication
// is meaningful, since it simply simulates a 10-week log").
func Replicate(d *Dataset, n int) (*Dataset, error) {
	if n < 1 {
		return nil, fmt.Errorf("dataset: replicate %d times", n)
	}
	out := New(d.DomainSize())
	if len(d.labels) > 0 {
		if err := out.SetLabels(d.labels); err != nil {
			return nil, err
		}
	}
	for rep := 0; rep < n; rep++ {
		for _, r := range d.Records() {
			if _, err := out.Add(r.Set); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
