package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddSortsAndDedups(t *testing.T) {
	d := New(10)
	id, err := d.Add([]Item{5, 1, 3, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first id = %d, want 1", id)
	}
	r := d.Record(0)
	want := []Item{1, 3, 5}
	if len(r.Set) != len(want) {
		t.Fatalf("set = %v, want %v", r.Set, want)
	}
	for i := range want {
		if r.Set[i] != want[i] {
			t.Fatalf("set = %v, want %v", r.Set, want)
		}
	}
}

func TestAddRejectsOutOfDomain(t *testing.T) {
	d := New(4)
	if _, err := d.Add([]Item{0, 4}); err == nil {
		t.Fatal("item 4 accepted in domain of 4")
	}
}

func TestAddEmptySet(t *testing.T) {
	d := New(4)
	if _, err := d.Add(nil); err != nil {
		t.Fatalf("empty set rejected: %v", err)
	}
	if got := d.ComputeStats().EmptyRecords; got != 1 {
		t.Fatalf("EmptyRecords = %d", got)
	}
}

func TestSupport(t *testing.T) {
	d := New(4)
	mustAdd(t, d, []Item{0, 1})
	mustAdd(t, d, []Item{0, 2})
	mustAdd(t, d, []Item{0})
	sup := d.Support()
	want := []int64{3, 1, 1, 0}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("support = %v, want %v", sup, want)
		}
	}
}

func mustAdd(t *testing.T, d *Dataset, set []Item) uint32 {
	t.Helper()
	id, err := d.Add(set)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestRecordPredicates(t *testing.T) {
	d := New(10)
	mustAdd(t, d, []Item{1, 3, 5, 7})
	r := d.Record(0)
	if !r.Contains(3) || r.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if !r.ContainsAll([]Item{1, 5}) {
		t.Fatal("ContainsAll({1,5}) = false")
	}
	if r.ContainsAll([]Item{1, 2}) {
		t.Fatal("ContainsAll({1,2}) = true")
	}
	if !r.SubsetOf([]Item{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatal("SubsetOf(superset) = false")
	}
	if r.SubsetOf([]Item{1, 3, 5}) {
		t.Fatal("SubsetOf(smaller) = true")
	}
	if !r.EqualSet([]Item{1, 3, 5, 7}) || r.EqualSet([]Item{1, 3, 5}) {
		t.Fatal("EqualSet wrong")
	}
}

func TestRecordPredicatesAgainstMaps(t *testing.T) {
	// Property check: the sorted-merge predicates agree with map logic.
	f := func(setRaw, qsRaw []uint8) bool {
		set := make([]Item, len(setRaw))
		for i, v := range setRaw {
			set[i] = Item(v % 32)
		}
		qs := make([]Item, len(qsRaw))
		for i, v := range qsRaw {
			qs[i] = Item(v % 32)
		}
		d := New(32)
		d.Add(set)
		r := d.Record(0)
		qs = normalize(qs)
		inQS := make(map[Item]bool)
		for _, q := range qs {
			inQS[q] = true
		}
		inSet := make(map[Item]bool)
		for _, s := range r.Set {
			inSet[s] = true
		}
		wantAll := true
		for _, q := range qs {
			if !inSet[q] {
				wantAll = false
			}
		}
		wantSub := true
		for _, s := range r.Set {
			if !inQS[s] {
				wantSub = false
			}
		}
		return r.ContainsAll(qs) == wantAll && r.SubsetOf(qs) == wantSub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func normalize(s []Item) []Item {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return dedupSorted(s)
}

func TestZipfProbabilities(t *testing.T) {
	z := NewZipf(4, 1.0)
	// Weights 1, 1/2, 1/3, 1/4 -> normalised.
	h := 1 + 0.5 + 1.0/3 + 0.25
	want := []float64{1 / h, 0.5 / h, (1.0 / 3) / h, 0.25 / h}
	for i, w := range want {
		if got := z.Probability(Item(i)); math.Abs(got-w) > 1e-12 {
			t.Errorf("P(%d) = %f, want %f", i, got, w)
		}
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if got := z.Probability(Item(i)); math.Abs(got-0.1) > 1e-12 {
			t.Fatalf("theta=0 P(%d) = %f, want 0.1", i, got)
		}
	}
}

func TestZipfEmpiricalSkew(t *testing.T) {
	z := NewZipf(100, 1.0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	// Item 0 should appear roughly 1/H(100) ≈ 19% of the time.
	p0 := float64(counts[0]) / n
	if p0 < 0.17 || p0 > 0.22 {
		t.Fatalf("empirical P(0) = %f, want ≈ 0.19", p0)
	}
	if counts[0] <= counts[50] {
		t.Fatal("no skew observed")
	}
}

func TestSampleDistinct(t *testing.T) {
	z := NewZipf(17, 0.25)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(17)
		s := z.SampleDistinct(rng, k)
		if len(s) != k {
			t.Fatalf("got %d items, want %d", len(s), k)
		}
		seen := map[Item]bool{}
		for _, it := range s {
			if seen[it] {
				t.Fatalf("duplicate item %d in %v", it, s)
			}
			if int(it) >= 17 {
				t.Fatalf("item %d out of domain", it)
			}
			seen[it] = true
		}
	}
	// k > n clamps.
	if got := z.SampleDistinct(rng, 40); len(got) != 17 {
		t.Fatalf("clamped sample has %d items, want 17", len(got))
	}
}

func TestGenerateSynthetic(t *testing.T) {
	cfg := DefaultSynthetic(5000)
	d, err := GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := d.ComputeStats()
	if st.NumRecords != 5000 || st.DomainSize != 2000 {
		t.Fatalf("stats %+v", st)
	}
	if st.AvgCardinal < 9 || st.AvgCardinal > 13 {
		t.Fatalf("avg cardinality %f, want ≈ 11 for uniform 2..20", st.AvgCardinal)
	}
	if st.MaxCardinal > 20 {
		t.Fatalf("max cardinality %d > 20", st.MaxCardinal)
	}
	// Skew: most frequent item should dominate the median item.
	sup := d.Support()
	sorted := append([]int64(nil), sup...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if sorted[0] < 4*sorted[1000] {
		t.Fatalf("zipf 0.8 skew missing: top %d vs median %d", sorted[0], sorted[1000])
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	a, err := GenerateSynthetic(DefaultSynthetic(200))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSynthetic(DefaultSynthetic(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ra, rb := a.Record(i), b.Record(i)
		if len(ra.Set) != len(rb.Set) {
			t.Fatalf("record %d differs across identical seeds", i)
		}
		for j := range ra.Set {
			if ra.Set[j] != rb.Set[j] {
				t.Fatalf("record %d differs across identical seeds", i)
			}
		}
	}
}

func TestGenerateSyntheticValidation(t *testing.T) {
	bad := DefaultSynthetic(10)
	bad.MinLen = 0
	if _, err := GenerateSynthetic(bad); err == nil {
		t.Error("MinLen 0 accepted")
	}
	bad = DefaultSynthetic(10)
	bad.DomainSize = 0
	if _, err := GenerateSynthetic(bad); err == nil {
		t.Error("DomainSize 0 accepted")
	}
	bad = DefaultSynthetic(-1)
	if _, err := GenerateSynthetic(bad); err == nil {
		t.Error("negative NumRecords accepted")
	}
}

func TestGenerateMSWebTwin(t *testing.T) {
	cfg := MSWebConfig{BaseRecords: 2000, Replicas: 10, Seed: 2}
	d, err := GenerateMSWeb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := d.ComputeStats()
	if st.NumRecords != 20000 {
		t.Fatalf("records = %d, want 20000", st.NumRecords)
	}
	if st.DomainSize != 294 {
		t.Fatalf("domain = %d, want 294", st.DomainSize)
	}
	if st.AvgCardinal < 2.0 || st.AvgCardinal > 4.0 {
		t.Fatalf("avg cardinality %f, want ≈ 3", st.AvgCardinal)
	}
	// Replication: record i and record i+base must be identical sets.
	for i := 0; i < 100; i++ {
		a, b := d.Record(i), d.Record(i+2000)
		if !a.EqualSet(b.Set) {
			t.Fatalf("replica %d differs from base", i)
		}
	}
	// Skew check.
	sup := d.Support()
	sorted := append([]int64(nil), sup...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if sorted[0] < 10*sorted[100] {
		t.Fatalf("msweb skew missing: %d vs %d", sorted[0], sorted[100])
	}
}

func TestGenerateMSNBCTwin(t *testing.T) {
	d, err := GenerateMSNBC(MSNBCConfig{NumRecords: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := d.ComputeStats()
	if st.DomainSize != 17 {
		t.Fatalf("domain = %d, want 17", st.DomainSize)
	}
	if st.AvgCardinal < 4.5 || st.AvgCardinal > 7.0 {
		t.Fatalf("avg cardinality %f, want ≈ 5.7", st.AvgCardinal)
	}
	// Near-uniform: max support within 4x of min support.
	sup := d.Support()
	mn, mx := sup[0], sup[0]
	for _, s := range sup {
		if s < mn {
			mn = s
		}
		if s > mx {
			mx = s
		}
	}
	if mn == 0 || mx > 4*mn {
		t.Fatalf("msnbc distribution too skewed: min %d max %d", mn, mx)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d, err := GenerateSynthetic(SyntheticConfig{
		NumRecords: 500, DomainSize: 50, MinLen: 1, MaxLen: 8, ZipfTheta: 0.5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.DomainSize() != d.DomainSize() {
		t.Fatalf("round trip: %d/%d records, %d/%d domain",
			got.Len(), d.Len(), got.DomainSize(), d.DomainSize())
	}
	for i := 0; i < d.Len(); i++ {
		if !got.Record(i).EqualSet(d.Record(i).Set) {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

func TestReadHeaderless(t *testing.T) {
	in := "1 2 3\n7\n"
	d, err := Read(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.DomainSize() != 8 {
		t.Fatalf("inferred domain = %d, want 8", d.DomainSize())
	}
	if d.Len() != 2 {
		t.Fatalf("records = %d, want 2", d.Len())
	}
}

func TestReadEmptySetLines(t *testing.T) {
	in := "domain 5\n0 1\n\n2\n"
	d, err := Read(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("records = %d, want 3 (middle one empty)", d.Len())
	}
	if len(d.Record(1).Set) != 0 {
		t.Fatalf("record 2 set = %v, want empty", d.Record(1).Set)
	}
}

func TestReadBadInput(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("domain x\n")); err == nil {
		t.Error("bad domain header accepted")
	}
	if _, err := Read(bytes.NewBufferString("domain 5\n1 zebra\n")); err == nil {
		t.Error("bad item accepted")
	}
	if _, err := Read(bytes.NewBufferString("domain 2\n0 5\n")); err == nil {
		t.Error("out-of-domain item accepted")
	}
}

func TestLabels(t *testing.T) {
	d := New(2)
	if err := d.SetLabels([]string{"home", "downloads"}); err != nil {
		t.Fatal(err)
	}
	if d.Label(1) != "downloads" {
		t.Fatalf("Label(1) = %q", d.Label(1))
	}
	if d.Label(9) != "9" {
		t.Fatalf("Label(9) = %q, want decimal fallback", d.Label(9))
	}
	if err := d.SetLabels([]string{"one"}); err == nil {
		t.Fatal("wrong label count accepted")
	}
}

func TestTruncGeometricBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		k := truncGeometric(rng, 1.0/3.0, 1, 35)
		if k < 1 || k > 35 {
			t.Fatalf("k = %d out of bounds", k)
		}
		sum += k
	}
	mean := float64(sum) / n
	if mean < 2.5 || mean > 3.5 {
		t.Fatalf("mean = %f, want ≈ 3", mean)
	}
}
