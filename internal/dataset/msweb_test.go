package dataset

import (
	"strings"
	"testing"
)

// A faithful excerpt of the UCI msweb file shape.
const mswebSample = `I,4,"www.microsoft.com created by getlog.pl"
T,1,"VRoot",1,1,"VRoot"
N,0,0
I,4,"Max case ID",42711
A,1287,1,"International AutoRoute","/autoroute"
A,1288,1,"library","/library"
A,1289,1,"Master Chef Product Information","/masterchef"
A,1297,1,"Central America","/centroam"
C,"10001",10001
V,1287,1
V,1288,1
C,"10002",10002
V,1288,1
C,"10003",10003
V,1289,1
V,1297,1
V,1288,1
`

func TestReadMSWeb(t *testing.T) {
	d, err := ReadMSWeb(strings.NewReader(mswebSample))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("records = %d, want 3", d.Len())
	}
	if d.DomainSize() != 4 {
		t.Fatalf("domain = %d, want 4", d.DomainSize())
	}
	// Attribute 1287 -> item 0, 1288 -> 1, 1289 -> 2, 1297 -> 3.
	if !d.Record(0).EqualSet([]Item{0, 1}) {
		t.Fatalf("record 1 = %v", d.Record(0).Set)
	}
	if !d.Record(1).EqualSet([]Item{1}) {
		t.Fatalf("record 2 = %v", d.Record(1).Set)
	}
	if !d.Record(2).EqualSet([]Item{1, 2, 3}) {
		t.Fatalf("record 3 = %v", d.Record(2).Set)
	}
	if d.Label(2) != "Master Chef Product Information" {
		t.Fatalf("label = %q", d.Label(2))
	}
}

func TestReadMSWebErrors(t *testing.T) {
	cases := map[string]string{
		"vote outside case": "A,1000,1,\"x\",\"/x\"\nV,1000,1\n",
		"unknown attribute": "C,\"1\",1\nV,999,1\n",
		"bad attribute id":  "A,zebra,1,\"x\",\"/x\"\n",
		"duplicate attr":    "A,1000,1,\"x\",\"/x\"\nA,1000,1,\"y\",\"/y\"\n",
		"short vote line":   "A,1000,1,\"x\",\"/x\"\nC,\"1\",1\nV\n",
		"short attr line":   "A,1000\n",
		"bad vote id":       "A,1000,1,\"x\",\"/x\"\nC,\"1\",1\nV,zebra,1\n",
	}
	for name, in := range cases {
		if _, err := ReadMSWeb(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadMSWebEmpty(t *testing.T) {
	d, err := ReadMSWeb(strings.NewReader("I,4,\"header only\"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 || d.DomainSize() != 0 {
		t.Fatalf("empty file gave %d records over %d items", d.Len(), d.DomainSize())
	}
}

func TestReplicate(t *testing.T) {
	d, err := ReadMSWeb(strings.NewReader(mswebSample))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replicate(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 30 {
		t.Fatalf("replicated records = %d, want 30", r.Len())
	}
	// Copies are byte-identical sets and labels carry over.
	for i := 0; i < d.Len(); i++ {
		for rep := 0; rep < 10; rep++ {
			if !r.Record(i + rep*d.Len()).EqualSet(d.Record(i).Set) {
				t.Fatalf("replica %d of record %d differs", rep, i)
			}
		}
	}
	if r.Label(0) != d.Label(0) {
		t.Fatal("labels lost in replication")
	}
	if _, err := Replicate(d, 0); err == nil {
		t.Fatal("replicate 0 accepted")
	}
}
