// Package dataset models collections of set-valued records — the database
// D of the paper (§2): each record has a unique id and a set-valued
// attribute drawn from a finite vocabulary I. It also provides the data
// generators used by the experiments: the synthetic Zipfian generator of
// §5 and statistical twins of the two UCI KDD logs (msweb, msnbc) that the
// paper evaluates on.
package dataset

import (
	"errors"
	"fmt"
	"sort"
)

// Item is a vocabulary element, identified by a dense uint32 in
// [0, DomainSize).
type Item = uint32

// Record is one database entry: a 1-based id plus its set, kept sorted
// ascending by item id with no duplicates.
type Record struct {
	ID  uint32
	Set []Item
}

// Dataset is an in-memory collection of records over a fixed vocabulary.
type Dataset struct {
	domainSize int
	records    []Record
	labels     []string // optional item labels, len 0 or domainSize
}

// New returns an empty dataset over items [0, domainSize).
func New(domainSize int) *Dataset {
	if domainSize < 0 {
		domainSize = 0
	}
	return &Dataset{domainSize: domainSize}
}

// DomainSize returns |I|.
func (d *Dataset) DomainSize() int { return d.domainSize }

// Len returns |D|.
func (d *Dataset) Len() int { return len(d.records) }

// Record returns the i-th record (0-based position, not id).
func (d *Dataset) Record(i int) Record { return d.records[i] }

// Records returns the backing record slice; callers must not mutate it.
func (d *Dataset) Records() []Record { return d.records }

// ErrItemOutOfDomain reports a set item outside the vocabulary.
var ErrItemOutOfDomain = errors.New("dataset: item outside domain")

// Add appends a record with the given set and returns its id. The set is
// copied, sorted and deduplicated; empty sets are allowed (the paper's
// order places the empty set first, and our OIF indexes it in a dedicated
// metadata region).
func (d *Dataset) Add(set []Item) (uint32, error) {
	cp := make([]Item, len(set))
	copy(cp, set)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	cp = dedupSorted(cp)
	for _, it := range cp {
		if int(it) >= d.domainSize {
			return 0, fmt.Errorf("%w: item %d, domain %d", ErrItemOutOfDomain, it, d.domainSize)
		}
	}
	id := uint32(len(d.records) + 1)
	d.records = append(d.records, Record{ID: id, Set: cp})
	return id, nil
}

func dedupSorted(s []Item) []Item {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// SetLabels attaches human-readable item labels (len must be DomainSize).
func (d *Dataset) SetLabels(labels []string) error {
	if len(labels) != d.domainSize {
		return fmt.Errorf("dataset: %d labels for domain %d", len(labels), d.domainSize)
	}
	d.labels = labels
	return nil
}

// Label returns the label of item it, or its decimal form if unlabeled.
func (d *Dataset) Label(it Item) string {
	if int(it) < len(d.labels) {
		return d.labels[it]
	}
	return fmt.Sprintf("%d", it)
}

// Support returns s(o) for every item: how many records contain it
// (Eq. 1's support function).
func (d *Dataset) Support() []int64 {
	sup := make([]int64, d.domainSize)
	for _, r := range d.records {
		for _, it := range r.Set {
			sup[it]++
		}
	}
	return sup
}

// Stats summarises the collection.
type Stats struct {
	NumRecords    int
	DomainSize    int
	TotalPostings int64   // sum of cardinalities
	AvgCardinal   float64 // the paper's "average record length l"
	MaxCardinal   int
	EmptyRecords  int
}

// ComputeStats scans the dataset once.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{NumRecords: len(d.records), DomainSize: d.domainSize}
	for _, r := range d.records {
		s.TotalPostings += int64(len(r.Set))
		if len(r.Set) > s.MaxCardinal {
			s.MaxCardinal = len(r.Set)
		}
		if len(r.Set) == 0 {
			s.EmptyRecords++
		}
	}
	if s.NumRecords > 0 {
		s.AvgCardinal = float64(s.TotalPostings) / float64(s.NumRecords)
	}
	return s
}

// Contains reports whether record r's set contains item it.
func (r Record) Contains(it Item) bool {
	i := sort.Search(len(r.Set), func(i int) bool { return r.Set[i] >= it })
	return i < len(r.Set) && r.Set[i] == it
}

// ContainsAll reports whether r's set is a superset of qs (qs must be
// sorted ascending).
func (r Record) ContainsAll(qs []Item) bool {
	i := 0
	for _, q := range qs {
		for i < len(r.Set) && r.Set[i] < q {
			i++
		}
		if i == len(r.Set) || r.Set[i] != q {
			return false
		}
		i++
	}
	return true
}

// SubsetOf reports whether r's set is a subset of qs (sorted ascending).
func (r Record) SubsetOf(qs []Item) bool {
	j := 0
	for _, it := range r.Set {
		for j < len(qs) && qs[j] < it {
			j++
		}
		if j == len(qs) || qs[j] != it {
			return false
		}
		j++
	}
	return true
}

// EqualSet reports whether r's set equals qs (sorted ascending).
func (r Record) EqualSet(qs []Item) bool {
	if len(r.Set) != len(qs) {
		return false
	}
	for i := range qs {
		if r.Set[i] != qs[i] {
			return false
		}
	}
	return true
}
