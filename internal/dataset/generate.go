package dataset

import (
	"fmt"
	"math/rand"
)

// SyntheticConfig parameterises the paper's synthetic generator (§5,
// "Data"): |D| set-values over a vocabulary of |I| items, cardinalities
// uniform in [MinLen, MaxLen] (the paper uses 2..20), item frequencies
// following a Zipfian distribution of the given order.
type SyntheticConfig struct {
	NumRecords int
	DomainSize int
	MinLen     int
	MaxLen     int
	ZipfTheta  float64
	Seed       int64
}

// DefaultSynthetic mirrors the paper's defaults — domain of 2 000 items,
// Zipf order 0.8, cardinalities 2..20 — at a caller-chosen |D| (the paper
// default is 10M; the harness scales it).
func DefaultSynthetic(numRecords int) SyntheticConfig {
	return SyntheticConfig{
		NumRecords: numRecords,
		DomainSize: 2000,
		MinLen:     2,
		MaxLen:     20,
		ZipfTheta:  0.8,
		Seed:       1,
	}
}

func (c SyntheticConfig) validate() error {
	if c.NumRecords < 0 {
		return fmt.Errorf("dataset: negative NumRecords %d", c.NumRecords)
	}
	if c.DomainSize <= 0 {
		return fmt.Errorf("dataset: DomainSize %d must be positive", c.DomainSize)
	}
	if c.MinLen < 1 || c.MaxLen < c.MinLen {
		return fmt.Errorf("dataset: bad cardinality range [%d,%d]", c.MinLen, c.MaxLen)
	}
	if c.ZipfTheta < 0 {
		return fmt.Errorf("dataset: negative ZipfTheta %f", c.ZipfTheta)
	}
	return nil
}

// GenerateSynthetic builds a dataset per the config.
func GenerateSynthetic(c SyntheticConfig) (*Dataset, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	z := NewZipf(c.DomainSize, c.ZipfTheta)
	d := New(c.DomainSize)
	maxLen := c.MaxLen
	if maxLen > c.DomainSize {
		maxLen = c.DomainSize
	}
	minLen := c.MinLen
	if minLen > maxLen {
		minLen = maxLen
	}
	for i := 0; i < c.NumRecords; i++ {
		k := minLen + rng.Intn(maxLen-minLen+1)
		set := z.SampleDistinct(rng, k)
		if _, err := d.Add(set); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MSWebConfig describes the msweb twin. The real dataset is a one-week
// www.microsoft.com log: 32 711 records over 294 virtual areas, skewed
// item distribution, average cardinality 3; the paper replicates it 10×
// to obtain a larger database ("this replication is meaningful, since it
// simply simulates a 10-week log"). Replication matters: every set value
// appears 10 times, which exercises the OIF's duplicate handling
// (equality answers spanning blocks).
type MSWebConfig struct {
	BaseRecords int
	Replicas    int
	Seed        int64
}

// DefaultMSWeb returns the published statistics.
func DefaultMSWeb() MSWebConfig {
	return MSWebConfig{BaseRecords: 32711, Replicas: 10, Seed: 2}
}

// GenerateMSWeb builds the msweb statistical twin: 294 items, Zipf-skewed
// draws (theta 1.05 reproduces the strongly skewed area popularity of a
// web portal), truncated-geometric cardinalities with mean ≈ 3.
func GenerateMSWeb(c MSWebConfig) (*Dataset, error) {
	if c.BaseRecords < 0 || c.Replicas < 1 {
		return nil, fmt.Errorf("dataset: bad msweb config %+v", c)
	}
	const domain = 294
	rng := rand.New(rand.NewSource(c.Seed))
	z := NewZipf(domain, 1.05)
	base := make([][]Item, 0, c.BaseRecords)
	for i := 0; i < c.BaseRecords; i++ {
		k := truncGeometric(rng, 1.0/3.0, 1, 35)
		base = append(base, z.SampleDistinct(rng, k))
	}
	d := New(domain)
	for rep := 0; rep < c.Replicas; rep++ {
		for _, set := range base {
			if _, err := d.Add(set); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// MSNBCConfig describes the msnbc twin: 989 818 records of page-category
// visits over only 17 items, near-uniform item distribution, average
// cardinality 5.7.
type MSNBCConfig struct {
	NumRecords int
	Seed       int64
}

// DefaultMSNBC returns the published statistics.
func DefaultMSNBC() MSNBCConfig {
	return MSNBCConfig{NumRecords: 989818, Seed: 3}
}

// GenerateMSNBC builds the msnbc statistical twin. A mild skew
// (theta 0.25) matches the paper's "relatively uniform" description while
// keeping the items distinguishable; cardinalities are truncated-geometric
// with mean ≈ 5.7, capped at the 17-item domain.
func GenerateMSNBC(c MSNBCConfig) (*Dataset, error) {
	if c.NumRecords < 0 {
		return nil, fmt.Errorf("dataset: bad msnbc config %+v", c)
	}
	const domain = 17
	rng := rand.New(rand.NewSource(c.Seed))
	z := NewZipf(domain, 0.25)
	d := New(domain)
	for i := 0; i < c.NumRecords; i++ {
		k := truncGeometric(rng, 1.0/5.7, 1, domain)
		if _, err := d.Add(z.SampleDistinct(rng, k)); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// truncGeometric draws from a geometric distribution with success
// probability p (mean 1/p), truncated to [lo, hi].
func truncGeometric(rng *rand.Rand, p float64, lo, hi int) int {
	k := 1
	for rng.Float64() > p && k < hi {
		k++
	}
	if k < lo {
		k = lo
	}
	return k
}
