package sequence

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestNewOrderByFrequency(t *testing.T) {
	// supports: item0=5, item1=9, item2=9, item3=1
	ord := NewOrder([]int64{5, 9, 9, 1})
	// Expected <_D: 1 (sup 9), 2 (sup 9, tie by id), 0 (sup 5), 3 (sup 1).
	wantRank := map[dataset.Item]Rank{1: 0, 2: 1, 0: 2, 3: 3}
	for it, want := range wantRank {
		got, err := ord.Rank(it)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Rank(%d) = %d, want %d", it, got, want)
		}
		if ord.Item(want) != it {
			t.Errorf("Item(%d) = %d, want %d", want, ord.Item(want), it)
		}
	}
	if ord.MaxRank() != 3 {
		t.Errorf("MaxRank = %d", ord.MaxRank())
	}
}

func TestRankOutOfDomain(t *testing.T) {
	ord := NewOrder([]int64{1, 2})
	if _, err := ord.Rank(2); err == nil {
		t.Fatal("out-of-domain rank succeeded")
	}
}

func TestSequenceFormPaperExample(t *testing.T) {
	// Reproduce the paper's Fig. 1 -> Fig. 3 ordering. Supports from
	// Fig. 1: a=12, b=9, c=8, d=6, e=2, f=3, g=2, h=2, i=2, j=2.
	// Items a..j as 0..9. <_D: a,b,c,d,f,e,g,h,i,j (f support 3 beats the
	// support-2 group; ties by alphabetic/id order).
	sup := []int64{12, 9, 8, 6, 2, 3, 2, 2, 2, 2}
	ord := NewOrder(sup)
	wantSeq := []dataset.Item{0, 1, 2, 3, 5, 4, 6, 7, 8, 9} // a b c d f e g h i j
	for r, it := range wantSeq {
		if ord.Item(Rank(r)) != it {
			t.Fatalf("rank %d = item %d, want %d", r, ord.Item(Rank(r)), it)
		}
	}
	// Record 101 = {g, b, a, d} -> sf = a,b,d,g = ranks 0,1,3,6.
	sf, err := ord.SequenceForm([]dataset.Item{6, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []Rank{0, 1, 3, 6}
	if len(sf) != len(want) {
		t.Fatalf("sf = %v, want %v", sf, want)
	}
	for i := range want {
		if sf[i] != want[i] {
			t.Fatalf("sf = %v, want %v", sf, want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b []Rank
		want int
	}{
		{nil, nil, 0},
		{nil, []Rank{0}, -1},
		{[]Rank{0}, nil, 1},
		{[]Rank{0, 1}, []Rank{0, 1}, 0},
		{[]Rank{0, 1}, []Rank{0, 2}, -1},
		{[]Rank{0, 1}, []Rank{0, 1, 5}, -1}, // prefix smaller
		{[]Rank{1}, []Rank{0, 9, 9}, 1},
		{[]Rank{0, 1, 2}, []Rank{0, 1}, 1},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := Compare(tc.b, tc.a); got != -tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.b, tc.a, got, -tc.want)
		}
	}
}

// TestTagOrderPreservation is the load-bearing property of the whole OIF
// key design: bytewise order of encoded tags == Compare order of the
// sequences.
func TestTagOrderPreservation(t *testing.T) {
	f := func(aRaw, bRaw []uint16) bool {
		a := make([]Rank, len(aRaw))
		for i, v := range aRaw {
			a[i] = Rank(v)
		}
		b := make([]Rank, len(bRaw))
		for i, v := range bRaw {
			b[i] = Rank(v)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		ea := AppendTag(nil, a)
		eb := AppendTag(nil, b)
		return sign(bytes.Compare(ea, eb)) == sign(Compare(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestTagRoundTrip(t *testing.T) {
	sf := []Rank{0, 7, 300, 1 << 20}
	enc := AppendTag(nil, sf)
	if len(enc) != TagLen(len(sf)) {
		t.Fatalf("encoded %d bytes, want %d", len(enc), TagLen(len(sf)))
	}
	got, n, err := DecodeTag(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	for i := range sf {
		if got[i] != sf[i] {
			t.Fatalf("round trip %v -> %v", sf, got)
		}
	}
	if _, _, err := DecodeTag(enc[:len(enc)-1]); err == nil {
		t.Fatal("unterminated tag decoded")
	}
	if _, _, err := DecodeTag([]byte{0x02}); err == nil {
		t.Fatal("bad marker byte decoded")
	}
	skip, err := SkipTag(enc)
	if err != nil || skip != len(enc) {
		t.Fatalf("SkipTag = %d, %v; want %d", skip, err, len(enc))
	}
	if _, err := SkipTag(enc[:3]); err == nil {
		t.Fatal("SkipTag on truncated tag succeeded")
	}
}

// TestTagSelfDelimitingInCompositeKeys reproduces the exact ambiguity the
// marked encoding exists to prevent: with fixed-width tags, the composite
// keys (tag=(5), id=7) and (tag=(5,6), id=9) would compare in the wrong
// order because 7 > 6 at the third word. The marked encoding must order
// them by tag first.
func TestTagSelfDelimitingInCompositeKeys(t *testing.T) {
	mk := func(sf []Rank, id uint32) []byte {
		k := AppendTag(nil, sf)
		return append(k, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	a := mk([]Rank{5}, 7)
	b := mk([]Rank{5, 6}, 9)
	if bytes.Compare(a, b) >= 0 {
		t.Fatalf("composite key with shorter tag must sort first: %x vs %x", a, b)
	}
	// Equal tags: the id breaks the tie.
	c := mk([]Rank{5, 6}, 8)
	if bytes.Compare(c, b) >= 0 {
		t.Fatal("equal tags must order by id")
	}
}

// TestTagAppendDecodeProperty: random sequences round trip and order holds
// even with arbitrary suffix bytes appended after the tag.
func TestTagAppendDecodeProperty(t *testing.T) {
	f := func(raw []uint16, suffix []byte) bool {
		sf := make([]Rank, len(raw))
		for i, v := range raw {
			sf[i] = Rank(v)
		}
		sort.Slice(sf, func(i, j int) bool { return sf[i] < sf[j] })
		enc := AppendTag(nil, sf)
		full := append(append([]byte(nil), enc...), suffix...)
		got, n, err := DecodeTag(full)
		if err != nil || n != len(enc) {
			return false
		}
		return Compare(got, sf) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSetInverseOfSequenceForm(t *testing.T) {
	ord := NewOrder([]int64{5, 1, 9, 3})
	set := []dataset.Item{0, 1, 3}
	sf, err := ord.SequenceForm(set)
	if err != nil {
		t.Fatal(err)
	}
	back := ord.Set(sf)
	if len(back) != len(set) {
		t.Fatalf("Set(sf) = %v", back)
	}
	for i := range set {
		if back[i] != set[i] {
			t.Fatalf("Set(SequenceForm(%v)) = %v", set, back)
		}
	}
}

func buildPaperFig1(t *testing.T) *dataset.Dataset {
	t.Helper()
	// Fig. 1 relation; items a..j = 0..9.
	sets := [][]dataset.Item{
		{6, 1, 0, 3}, // 101 {g,b,a,d}
		{0, 4, 1},    // 102 {a,e,b}
		{5, 4, 0, 1}, // 103 {f,e,a,b}
		{3, 1, 0},    // 104 {d,b,a}
		{0, 1, 5, 2}, // 105 {a,b,f,c}
		{2, 0},       // 106 {c,a}
		{3, 7},       // 107 {d,h}
		{1, 0, 5},    // 108 {b,a,f}
		{1, 2},       // 109 {b,c}
		{9, 1, 6},    // 110 {j,b,g}
		{0, 2, 1},    // 111 {a,c,b}
		{8, 3},       // 112 {i,d}
		{0},          // 113 {a}
		{0, 3},       // 114 {a,d}
		{9, 2, 0},    // 115 {j,c,a}
		{8, 2},       // 116 {i,c}
		{0, 2, 7},    // 117 {a,c,h}
		{3, 2},       // 118 {d,c}
	}
	d := dataset.New(10)
	for _, s := range sets {
		if _, err := d.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestReorderPaperFig3 checks the full §3 example: reordering Fig. 1 must
// produce exactly the relation of Fig. 3.
func TestReorderPaperFig3(t *testing.T) {
	d := buildPaperFig1(t)
	ord := OrderFromDataset(d)
	r, err := Reorder(d, ord)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3 with items a..j = 0..9, listed in new-id order 1..18.
	want := [][]dataset.Item{
		{0},          // 1 {a}
		{0, 1, 2},    // 2 {a,b,c}
		{0, 1, 2, 5}, // 3 {a,b,c,f}
		{0, 1, 3},    // 4 {a,b,d}
		{0, 1, 3, 6}, // 5 {a,b,d,g}
		{0, 1, 5},    // 6 {a,b,f}
		{0, 1, 5, 4}, // 7 {a,b,f,e}
		{0, 1, 4},    // 8 {a,b,e}
		{0, 2},       // 9 {a,c}
		{0, 2, 7},    // 10 {a,c,h}
		{0, 2, 9},    // 11 {a,c,j}
		{0, 3},       // 12 {a,d}
		{1, 2},       // 13 {b,c}
		{1, 6, 9},    // 14 {b,g,j}
		{2, 3},       // 15 {c,d}
		{2, 8},       // 16 {c,i}
		{3, 7},       // 17 {d,h}
		{3, 8},       // 18 {d,i}
	}
	// Note: the paper's Fig. 3 draws ids 17/18 as {d,i} then {d,h}, which
	// contradicts its own Eq. 1 — h and i both have support 2 and the tie
	// break is alphabetic, so {d,h} < {d,i}. We follow Eq. 1.
	if r.Len() != len(want) {
		t.Fatalf("reordered %d records, want %d", r.Len(), len(want))
	}
	for newID := uint32(1); newID <= uint32(len(want)); newID++ {
		rec := d.Record(r.OrigIndex(newID))
		wantSet := append([]dataset.Item(nil), want[newID-1]...)
		sort.Slice(wantSet, func(i, j int) bool { return wantSet[i] < wantSet[j] })
		if !rec.EqualSet(wantSet) {
			t.Errorf("new id %d = set %v, want %v", newID, rec.Set, wantSet)
		}
	}
}

func TestReorderInvariants(t *testing.T) {
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumRecords: 3000, DomainSize: 100, MinLen: 1, MaxLen: 10, ZipfTheta: 0.9, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ord := OrderFromDataset(d)
	r, err := Reorder(d, ord)
	if err != nil {
		t.Fatal(err)
	}
	// Invariant 1: sf is non-decreasing in new-id order.
	for id := uint32(2); id <= uint32(r.Len()); id++ {
		if Compare(r.SF(id-1), r.SF(id)) > 0 {
			t.Fatalf("sf order violated between ids %d and %d", id-1, id)
		}
	}
	// Invariant 2: the id maps are mutually inverse.
	for id := uint32(1); id <= uint32(r.Len()); id++ {
		if r.NewID(r.OrigIndex(id)) != id {
			t.Fatalf("id map not inverse at %d", id)
		}
	}
	// Invariant 3: sf matches the record's set under the order.
	for id := uint32(1); id <= uint32(r.Len()); id += 37 {
		rec := d.Record(r.OrigIndex(id))
		sf, err := ord.SequenceForm(rec.Set)
		if err != nil {
			t.Fatal(err)
		}
		if Compare(sf, r.SF(id)) != 0 {
			t.Fatalf("sf mismatch at id %d", id)
		}
		if r.Cardinality(id) != len(rec.Set) {
			t.Fatalf("cardinality mismatch at id %d", id)
		}
	}
}

func TestReorderStableForDuplicates(t *testing.T) {
	d := dataset.New(5)
	for i := 0; i < 6; i++ {
		if _, err := d.Add([]dataset.Item{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Add([]dataset.Item{0}); err != nil {
		t.Fatal(err)
	}
	ord := OrderFromDataset(d)
	r, err := Reorder(d, ord)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates must be consecutive and keep source order.
	prev := -1
	for id := uint32(1); id <= uint32(r.Len()); id++ {
		rec := d.Record(r.OrigIndex(id))
		if rec.EqualSet([]dataset.Item{1, 2}) {
			if prev >= 0 && r.OrigIndex(id) != prev+1 {
				t.Fatal("duplicate records not in stable source order")
			}
			prev = r.OrigIndex(id)
		}
	}
}

func TestReorderEmptySetFirst(t *testing.T) {
	d := dataset.New(3)
	if _, err := d.Add([]dataset.Item{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add([]dataset.Item{1, 2}); err != nil {
		t.Fatal(err)
	}
	ord := OrderFromDataset(d)
	r, err := Reorder(d, ord)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality(1) != 0 {
		t.Fatal("empty set did not come first")
	}
}

func TestReorderRandomAgreesWithSortedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := dataset.New(30)
	for i := 0; i < 1000; i++ {
		k := 1 + rng.Intn(6)
		set := make([]dataset.Item, k)
		for j := range set {
			set[j] = dataset.Item(rng.Intn(30))
		}
		if _, err := d.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	ord := OrderFromDataset(d)
	r, err := Reorder(d, ord)
	if err != nil {
		t.Fatal(err)
	}
	// Independently sort sequence forms and compare.
	sfs := make([][]Rank, d.Len())
	for i := 0; i < d.Len(); i++ {
		sf, err := ord.SequenceForm(d.Record(i).Set)
		if err != nil {
			t.Fatal(err)
		}
		sfs[i] = sf
	}
	sort.SliceStable(sfs, func(a, b int) bool { return Compare(sfs[a], sfs[b]) < 0 })
	for id := uint32(1); id <= uint32(r.Len()); id++ {
		if Compare(sfs[id-1], r.SF(id)) != 0 {
			t.Fatalf("independent sort disagrees at id %d", id)
		}
	}
}
