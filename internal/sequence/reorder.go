package sequence

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Reordered is the outcome of the paper's global record re-ordering (§3):
// records sorted lexicographically by sequence form with new dense ids
// 1..N assigned in that order, so that id order equals sf order. Sequence
// forms are stored in a flat arena to stay compact at millions of records.
type Reordered struct {
	flat []Rank   // all sequence forms, concatenated in new-id order
	off  []uint32 // off[i]..off[i+1] delimits new id i+1's sf; len = N+1

	origIndex []uint32 // new id -> position in the source dataset (0-based)
	newID     []uint32 // source position -> new id (1-based)
}

// Reorder sorts d's records under ord and assigns new ids. The sort is
// stable, so duplicate set-values keep their relative source order —
// duplicates occupy consecutive new ids, which the OIF's equality path
// depends on.
func Reorder(d *dataset.Dataset, ord *Order) (*Reordered, error) {
	n := d.Len()
	// Build all sequence forms into a flat arena first (source order).
	var total int
	for i := 0; i < n; i++ {
		total += len(d.Record(i).Set)
	}
	srcFlat := make([]Rank, 0, total)
	srcOff := make([]uint32, n+1)
	for i := 0; i < n; i++ {
		set := d.Record(i).Set
		start := len(srcFlat)
		for _, it := range set {
			r, err := ord.Rank(it)
			if err != nil {
				return nil, err
			}
			srcFlat = append(srcFlat, r)
		}
		sf := srcFlat[start:]
		sort.Slice(sf, func(a, b int) bool { return sf[a] < sf[b] })
		srcOff[i+1] = uint32(len(srcFlat))
	}
	sfAt := func(i int) []Rank { return srcFlat[srcOff[i]:srcOff[i+1]] }

	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return Compare(sfAt(int(perm[a])), sfAt(int(perm[b]))) < 0
	})

	r := &Reordered{
		flat:      make([]Rank, 0, total),
		off:       make([]uint32, 1, n+1),
		origIndex: perm,
		newID:     make([]uint32, n),
	}
	for newIdx, src := range perm {
		r.flat = append(r.flat, sfAt(int(src))...)
		r.off = append(r.off, uint32(len(r.flat)))
		r.newID[src] = uint32(newIdx + 1)
	}
	return r, nil
}

// Parts exposes the raw components for persistence: the flat rank arena,
// the per-record offsets (len = N+1), and the new-id -> source-position
// permutation. Callers must not mutate them.
func (r *Reordered) Parts() (flat []Rank, off []uint32, origIndex []uint32) {
	return r.flat, r.off, r.origIndex
}

// ReorderedFromParts reconstructs a Reordered from persisted components,
// validating shape: off must be monotonically non-decreasing starting at
// 0 and ending at len(flat); origIndex must be a permutation.
func ReorderedFromParts(flat []Rank, off []uint32, origIndex []uint32) (*Reordered, error) {
	n := len(origIndex)
	if len(off) != n+1 {
		return nil, fmt.Errorf("sequence: %d offsets for %d records", len(off), n)
	}
	if off[0] != 0 || int(off[n]) != len(flat) {
		return nil, fmt.Errorf("sequence: offsets do not span the arena")
	}
	for i := 1; i <= n; i++ {
		if off[i] < off[i-1] {
			return nil, fmt.Errorf("sequence: offsets decrease at %d", i)
		}
	}
	newID := make([]uint32, n)
	seen := make([]bool, n)
	for idx, src := range origIndex {
		if int(src) >= n || seen[src] {
			return nil, fmt.Errorf("sequence: origIndex is not a permutation at %d", idx)
		}
		seen[src] = true
		newID[src] = uint32(idx + 1)
	}
	return &Reordered{flat: flat, off: off, origIndex: origIndex, newID: newID}, nil
}

// Len returns the number of records.
func (r *Reordered) Len() int { return len(r.origIndex) }

// SF returns the sequence form of the record with new id (1-based). The
// slice aliases the arena; callers must not mutate it.
func (r *Reordered) SF(newID uint32) []Rank {
	return r.flat[r.off[newID-1]:r.off[newID]]
}

// Cardinality returns the set size of the record with new id.
func (r *Reordered) Cardinality(newID uint32) int {
	return int(r.off[newID] - r.off[newID-1])
}

// OrigIndex maps a new id to the record's 0-based position in the source
// dataset.
func (r *Reordered) OrigIndex(newID uint32) int { return int(r.origIndex[newID-1]) }

// NewID maps a 0-based source position to the record's new id. This is
// the paper's "reassignment map" whose space cost §5 accounts for.
func (r *Reordered) NewID(srcIndex int) uint32 { return r.newID[srcIndex] }

// ArenaBytes reports the memory footprint of the sf arena (space
// accounting in the experiments).
func (r *Reordered) ArenaBytes() int64 {
	return int64(len(r.flat))*4 + int64(len(r.off))*4
}

// MapBytes reports the reassignment map footprint (new id <-> original
// position, 8 bytes per record).
func (r *Reordered) MapBytes() int64 {
	return int64(len(r.origIndex))*4 + int64(len(r.newID))*4
}
