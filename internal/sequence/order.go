// Package sequence implements the ordering machinery of the paper's §3:
// the frequency-based total order <_D over items (Eq. 1), sequence forms
// sf(v) (Def. 1), lexicographic comparison of sequence forms, the
// order-preserving byte encoding used as B-tree block tags, and the global
// re-ordering of records with dense id reassignment.
package sequence

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Rank is an item's position in the <_D order: rank 0 is the smallest
// item under <_D, i.e. the most frequent one.
type Rank = uint32

// Order is the total order <_D of Eq. 1: items sorted by support
// descending, ties broken by ascending item id (the paper breaks ties
// alphabetically; items here are numeric).
type Order struct {
	rankOf []Rank         // item -> rank
	itemOf []dataset.Item // rank -> item
}

// NewOrder builds the order from per-item supports (index = item id).
func NewOrder(support []int64) *Order {
	n := len(support)
	itemOf := make([]dataset.Item, n)
	for i := range itemOf {
		itemOf[i] = dataset.Item(i)
	}
	sort.SliceStable(itemOf, func(a, b int) bool {
		ia, ib := itemOf[a], itemOf[b]
		if support[ia] != support[ib] {
			return support[ia] > support[ib]
		}
		return ia < ib
	})
	rankOf := make([]Rank, n)
	for r, it := range itemOf {
		rankOf[it] = Rank(r)
	}
	return &Order{rankOf: rankOf, itemOf: itemOf}
}

// OrderFromDataset counts supports and builds the order in one step.
func OrderFromDataset(d *dataset.Dataset) *Order {
	return NewOrder(d.Support())
}

// NewOrderFromItems reconstructs an order from its rank->item table (as
// persisted by an index snapshot). The table must be a permutation of
// [0, len).
func NewOrderFromItems(itemOf []dataset.Item) (*Order, error) {
	rankOf := make([]Rank, len(itemOf))
	seen := make([]bool, len(itemOf))
	for r, it := range itemOf {
		if int(it) >= len(itemOf) || seen[it] {
			return nil, fmt.Errorf("sequence: itemOf is not a permutation at rank %d", r)
		}
		seen[it] = true
		rankOf[it] = Rank(r)
	}
	cp := make([]dataset.Item, len(itemOf))
	copy(cp, itemOf)
	return &Order{rankOf: rankOf, itemOf: cp}, nil
}

// Items returns the rank->item table (for persistence). Callers must not
// mutate it.
func (o *Order) Items() []dataset.Item { return o.itemOf }

// DomainSize returns |I|.
func (o *Order) DomainSize() int { return len(o.rankOf) }

// Rank returns the rank of item it.
func (o *Order) Rank(it dataset.Item) (Rank, error) {
	if int(it) >= len(o.rankOf) {
		return 0, fmt.Errorf("sequence: item %d outside domain %d", it, len(o.rankOf))
	}
	return o.rankOf[it], nil
}

// MustRank is Rank for callers that have validated the item.
func (o *Order) MustRank(it dataset.Item) Rank { return o.rankOf[it] }

// Item returns the item at rank r.
func (o *Order) Item(r Rank) dataset.Item { return o.itemOf[r] }

// MaxRank returns the greatest rank (the least frequent item), or 0 for an
// empty domain.
func (o *Order) MaxRank() Rank {
	if len(o.rankOf) == 0 {
		return 0
	}
	return Rank(len(o.rankOf) - 1)
}

// SequenceForm converts an item set into its sequence form: the multiset
// of ranks sorted ascending (Def. 1 lists items smallest-under-<_D
// first). The input set must contain valid, distinct items.
func (o *Order) SequenceForm(set []dataset.Item) ([]Rank, error) {
	sf := make([]Rank, len(set))
	for i, it := range set {
		r, err := o.Rank(it)
		if err != nil {
			return nil, err
		}
		sf[i] = r
	}
	sort.Slice(sf, func(i, j int) bool { return sf[i] < sf[j] })
	return sf, nil
}

// Set converts a sequence form back to a sorted item set.
func (o *Order) Set(sf []Rank) []dataset.Item {
	set := make([]dataset.Item, len(sf))
	for i, r := range sf {
		set[i] = o.itemOf[r]
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// Compare lexicographically compares two sequence forms under <_D: the
// empty sequence is smallest and a proper prefix precedes its extensions.
func Compare(a, b []Rank) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Tag encoding. Tags are embedded in composite B-tree keys
// (rank‖tag‖recordID), so they must be (a) self-delimiting — a parser must
// find where the tag ends and the id begins — and (b) order-preserving
// under bytewise comparison even when the following id bytes differ.
// A naive fixed-width concatenation fails (b): the id bytes of a short tag
// would be compared against rank bytes of a longer one. We therefore
// prefix every element with a 0x01 marker and terminate the tag with
// 0x00: a proper prefix ends in 0x00 where its extension has 0x01, so the
// prefix sorts first, exactly matching Compare.
const (
	tagElem = 0x01 // precedes each 4-byte big-endian rank
	tagEnd  = 0x00 // terminates the tag

	// TagElemWidth is the encoded size of one rank element.
	TagElemWidth = 5
)

// TagLen returns the encoded size of a sequence of n ranks.
func TagLen(n int) int { return n*TagElemWidth + 1 }

// AppendTag appends the order-preserving, self-delimiting encoding of sf.
// Bytewise comparison of two encodings equals Compare on the sequences,
// including the prefix rule — the property the OIF's B-tree keys rely on.
func AppendTag(dst []byte, sf []Rank) []byte {
	for _, r := range sf {
		dst = append(dst, tagElem)
		dst = binary.BigEndian.AppendUint32(dst, r)
	}
	return append(dst, tagEnd)
}

// DecodeTag parses one tag from the front of b, returning the sequence and
// the number of bytes consumed (terminator included).
func DecodeTag(b []byte) ([]Rank, int, error) {
	return AppendDecodedTag(nil, b)
}

// AppendDecodedTag is DecodeTag into a reusable slice: the decoded ranks
// are appended to dst (pass a recycled buffer's [:0] to decode without
// allocating). It is the form the OIF's block cursor uses on every
// block visit.
func AppendDecodedTag(dst []Rank, b []byte) ([]Rank, int, error) {
	pos := 0
	for {
		if pos >= len(b) {
			return nil, 0, fmt.Errorf("sequence: unterminated tag")
		}
		switch b[pos] {
		case tagEnd:
			return dst, pos + 1, nil
		case tagElem:
			if pos+TagElemWidth > len(b) {
				return nil, 0, fmt.Errorf("sequence: truncated tag element")
			}
			dst = append(dst, binary.BigEndian.Uint32(b[pos+1:]))
			pos += TagElemWidth
		default:
			return nil, 0, fmt.Errorf("sequence: bad tag byte 0x%02x", b[pos])
		}
	}
}

// SkipTag returns the byte length of the tag at the front of b
// (terminator included) without decoding the ranks.
func SkipTag(b []byte) (int, error) {
	pos := 0
	for {
		if pos >= len(b) {
			return 0, fmt.Errorf("sequence: unterminated tag")
		}
		switch b[pos] {
		case tagEnd:
			return pos + 1, nil
		case tagElem:
			pos += TagElemWidth
		default:
			return 0, fmt.Errorf("sequence: bad tag byte 0x%02x", b[pos])
		}
	}
}
