package vbyte

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// refUint32 is the pre-optimisation reference implementation of Uint32:
// decode through Uint64 and narrow. The fast decoder must match it on
// every input — value, width, and error classification.
func refUint32(buf []byte) (uint32, int, error) {
	v, n, err := Uint64(buf)
	if err != nil {
		return 0, 0, err
	}
	if v > 0xFFFFFFFF {
		return 0, 0, fmt.Errorf("%w: %d does not fit in 32 bits", ErrOverflow, v)
	}
	return uint32(v), n, nil
}

// checkUint32Matches asserts the fast Uint32 agrees with the reference on
// one input.
func checkUint32Matches(t *testing.T, buf []byte) {
	t.Helper()
	gv, gn, gerr := Uint32(buf)
	wv, wn, werr := refUint32(buf)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("Uint32(%x) err = %v, reference err = %v", buf, gerr, werr)
	}
	if werr != nil {
		for _, sentinel := range []error{ErrTruncated, ErrOverflow} {
			if errors.Is(gerr, sentinel) != errors.Is(werr, sentinel) {
				t.Fatalf("Uint32(%x) err %v classifies %v differently from reference %v",
					buf, gerr, sentinel, werr)
			}
		}
		return
	}
	if gv != wv || gn != wn {
		t.Fatalf("Uint32(%x) = (%d, %d), reference (%d, %d)", buf, gv, gn, wv, wn)
	}
}

func TestUint32FastMatchesReference(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{1},
		{0x7F},
		{0x80},       // truncated
		{0x80, 0x01}, // 128
		{0xFF, 0x7F}, // 16383
		AppendUint32(nil, math.MaxUint32),
		AppendUint64(nil, math.MaxUint32+1),  // 33 bits: overflow-32
		AppendUint64(nil, math.MaxUint64),    // 64 bits: overflow-32
		{0xFF, 0xFF, 0xFF, 0xFF, 0x0F},       // exactly MaxUint32
		{0xFF, 0xFF, 0xFF, 0xFF, 0x10},       // one past 32 bits
		{0x80, 0x80, 0x80, 0x80, 0x80},       // truncated mid 5th byte
		{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, // 35-bit-wide zero-payload
		bytes.Repeat([]byte{0xFF}, 11),       // overlong beyond 64 bits
		append(bytes.Repeat([]byte{0x80}, 9), 0x01), // high bit of uint64
		append(bytes.Repeat([]byte{0x80}, 9), 0x02), // 65-bit overflow
	}
	for _, c := range cases {
		checkUint32Matches(t, c)
	}
	// Every encodable 32-bit boundary value round trips identically.
	for shift := 0; shift < 32; shift++ {
		for _, delta := range []int64{-1, 0, 1} {
			v := int64(1)<<uint(shift) + delta
			if v < 0 || v > math.MaxUint32 {
				continue
			}
			checkUint32Matches(t, AppendUint32(nil, uint32(v)))
		}
	}
}

func FuzzUint32(f *testing.F) {
	f.Add([]byte{0x05})
	f.Add([]byte{0x80, 0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x10})
	f.Add(bytes.Repeat([]byte{0x80}, 12))
	f.Fuzz(func(t *testing.T, buf []byte) {
		checkUint32Matches(t, buf)
	})
}

// checkPostingsMatch asserts DecodePostingsInto agrees with the reference
// DecodePostings on one (buf, prev) input.
func checkPostingsMatch(t *testing.T, buf []byte, prev uint32) {
	t.Helper()
	want, werr := DecodePostings(buf, prev, nil)
	got, gerr := DecodePostingsInto(buf, prev, nil)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("DecodePostingsInto(%x, %d) err = %v, reference err = %v", buf, prev, gerr, werr)
	}
	if werr != nil {
		for _, sentinel := range []error{ErrTruncated, ErrOverflow, ErrNonMonotonic} {
			if errors.Is(gerr, sentinel) != errors.Is(werr, sentinel) {
				t.Fatalf("DecodePostingsInto(%x, %d) err %v classifies %v differently from reference %v",
					buf, prev, gerr, sentinel, werr)
			}
		}
		return
	}
	if len(got) != len(want) {
		t.Fatalf("DecodePostingsInto(%x, %d) decoded %d postings, reference %d", buf, prev, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DecodePostingsInto(%x, %d) posting %d = %+v, reference %+v", buf, prev, i, got[i], want[i])
		}
	}
}

func TestDecodePostingsIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(150)
		ps := make([]Posting, 0, n)
		id := uint32(0)
		for i := 0; i < n; i++ {
			id += uint32(1 + rng.Intn(1<<uint(rng.Intn(18))))
			ps = append(ps, Posting{ID: id, Length: uint32(rng.Intn(1 << uint(rng.Intn(18))))})
		}
		buf, err := AppendPostings(nil, ps, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkPostingsMatch(t, buf, 0)
		// Truncations and corruptions must classify identically too.
		if len(buf) > 0 {
			checkPostingsMatch(t, buf[:rng.Intn(len(buf))], 0)
			flip := append([]byte(nil), buf...)
			flip[rng.Intn(len(flip))] ^= byte(1 << uint(rng.Intn(8)))
			checkPostingsMatch(t, flip, 0)
		}
	}
}

func TestDecodePostingsIntoReusesArena(t *testing.T) {
	ps := []Posting{{1, 2}, {3, 4}, {700, 5}}
	buf, err := AppendPostings(nil, ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	arena := make([]Posting, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := DecodePostingsInto(buf, 0, arena[:0])
		if err != nil || len(out) != len(ps) {
			t.Fatalf("decode: %v (%d postings)", err, len(out))
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodePostingsInto into a sized arena allocated %.1f times per run", allocs)
	}
}

func FuzzDecodePostings(f *testing.F) {
	seed, err := AppendPostings(nil, []Posting{{1, 3}, {2, 1}, {900, 12}}, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, uint32(0))
	f.Add([]byte{0x00, 0x01}, uint32(0)) // zero gap
	f.Add([]byte{0x80}, uint32(7))       // truncated gap
	f.Add([]byte{0x01}, uint32(7))       // truncated length
	f.Fuzz(func(t *testing.T, buf []byte, prev uint32) {
		checkPostingsMatch(t, buf, prev)
	})
}

func BenchmarkUint32(b *testing.B) {
	small := AppendUint32(nil, 42)
	large := AppendUint32(nil, 1<<27)
	b.Run("1byte", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Uint32(small); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("4byte", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Uint32(large); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodePostingsInto(b *testing.B) {
	ps := make([]Posting, 1024)
	id := uint32(0)
	rng := rand.New(rand.NewSource(1))
	for i := range ps {
		id += uint32(1 + rng.Intn(50))
		ps[i] = Posting{ID: id, Length: uint32(2 + rng.Intn(18))}
	}
	buf, err := AppendPostings(nil, ps, 0)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]Posting, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = out[:0]
		out, err = DecodePostingsInto(buf, 0, out)
		if err != nil {
			b.Fatal(err)
		}
	}
}
