// Package vbyte implements the byte-wise variable-length integer coding of
// Williams & Zobel ("Compressing Integers for Fast File Access", 1999) that
// the paper adopts for posting compression (§3, "Compression"; §5 uses
// "v-byte compression" for both the d-gaps of record ids and the stored
// record lengths).
//
// Each byte carries 7 payload bits; the high bit is a continuation flag
// (1 = more bytes follow). Values are encoded little-endian by 7-bit group.
package vbyte

import (
	"errors"
	"fmt"
)

// ErrTruncated reports a decode that ran off the end of its buffer.
var ErrTruncated = errors.New("vbyte: truncated value")

// ErrOverflow reports an encoded value wider than 64 bits.
var ErrOverflow = errors.New("vbyte: value overflows uint64")

// MaxLen64 is the maximum encoded size of a uint64.
const MaxLen64 = 10

// MaxLen32 is the maximum encoded size of a uint32.
const MaxLen32 = 5

// AppendUint64 appends the v-byte encoding of v to dst and returns the
// extended slice.
func AppendUint64(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uint64 decodes one value from buf, returning it and the number of bytes
// consumed.
func Uint64(buf []byte) (v uint64, n int, err error) {
	var shift uint
	for i, b := range buf {
		if i == MaxLen64 {
			return 0, 0, ErrOverflow
		}
		if b < 0x80 {
			if i == MaxLen64-1 && b > 1 {
				return 0, 0, ErrOverflow
			}
			return v | uint64(b)<<shift, i + 1, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// AppendUint32 appends the v-byte encoding of v.
func AppendUint32(dst []byte, v uint32) []byte {
	return AppendUint64(dst, uint64(v))
}

// Uint32 decodes one 32-bit value from buf. Unlike the original
// Uint64-and-narrow round trip, it decodes directly in 32-bit registers:
// the overwhelmingly common single-byte value returns immediately, and
// values up to MaxLen32 bytes stay in the inlined loop. Only overlong,
// overflowing, or truncated inputs fall back to the 64-bit decoder, so
// the error classification (ErrTruncated vs ErrOverflow, including the
// "does not fit in 32 bits" wrap) is byte-for-byte identical to the
// previous implementation — FuzzUint32 pins the equivalence.
func Uint32(buf []byte) (uint32, int, error) {
	if len(buf) > 0 && buf[0] < 0x80 {
		return uint32(buf[0]), 1, nil
	}
	return uint32Multi(buf)
}

// uint32Multi decodes a multi-byte (or erroneous) 32-bit value. Split
// from Uint32 so the fast path stays inlinable.
func uint32Multi(buf []byte) (uint32, int, error) {
	var v uint32
	var shift uint
	n := len(buf)
	if n > MaxLen32 {
		n = MaxLen32
	}
	for i := 0; i < n; i++ {
		b := buf[i]
		if b < 0x80 {
			if i == MaxLen32-1 && b > 0x0F {
				break // payload exceeds 32 bits: classify via the slow path
			}
			return v | uint32(b)<<shift, i + 1, nil
		}
		v |= uint32(b&0x7f) << shift
		shift += 7
	}
	// Overlong, overflowing, or truncated: re-decode through the 64-bit
	// path so the returned error matches the reference decoder exactly.
	w, m, err := Uint64(buf)
	if err != nil {
		return 0, 0, err
	}
	if w > 0xFFFFFFFF {
		return 0, 0, fmt.Errorf("%w: %d does not fit in 32 bits", ErrOverflow, w)
	}
	return uint32(w), m, nil
}

// Len64 returns the encoded size of v in bytes without encoding it.
func Len64(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
