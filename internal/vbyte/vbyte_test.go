package vbyte

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUint64RoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 129, 300, 16383, 16384, 1 << 20, 1<<32 - 1, 1 << 32, math.MaxUint64}
	for _, v := range cases {
		buf := AppendUint64(nil, v)
		if len(buf) != Len64(v) {
			t.Errorf("Len64(%d) = %d, encoded %d bytes", v, Len64(v), len(buf))
		}
		got, n, err := Uint64(buf)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		if got != v || n != len(buf) {
			t.Errorf("round trip %d -> %d (n=%d of %d)", v, got, n, len(buf))
		}
	}
}

func TestUint64RoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		buf := AppendUint64(nil, v)
		got, n, err := Uint64(buf)
		return err == nil && got == v && n == len(buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64ConcatenatedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var vals []uint64
	var buf []byte
	for i := 0; i < 1000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		vals = append(vals, v)
		buf = AppendUint64(buf, v)
	}
	for i, want := range vals {
		got, n, err := Uint64(buf)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d = %d, want %d", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestUint64Truncated(t *testing.T) {
	buf := AppendUint64(nil, 1<<40)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Uint64(buf[:i]); err == nil {
			t.Errorf("decoding %d-byte prefix succeeded", i)
		}
	}
}

func TestUint64Overflow(t *testing.T) {
	// 11 continuation bytes can never be a valid uint64.
	buf := make([]byte, 11)
	for i := range buf {
		buf[i] = 0xFF
	}
	if _, _, err := Uint64(buf); err == nil {
		t.Error("11-byte over-long value decoded without error")
	}
	// 10 bytes where the last carries more than 1 bit also overflows.
	buf = buf[:10]
	buf[9] = 0x02
	if _, _, err := Uint64(buf); err == nil {
		t.Error("65-bit value decoded without error")
	}
}

func TestUint32RejectsWideValues(t *testing.T) {
	buf := AppendUint64(nil, 1<<33)
	if _, _, err := Uint32(buf); err == nil {
		t.Error("Uint32 decoded a 33-bit value")
	}
	buf = AppendUint32(nil, math.MaxUint32)
	v, _, err := Uint32(buf)
	if err != nil || v != math.MaxUint32 {
		t.Errorf("Uint32(max) = %d, %v", v, err)
	}
}

func TestPostingsRoundTrip(t *testing.T) {
	ps := []Posting{{1, 3}, {2, 1}, {9, 12}, {10, 2}, {1000000, 20}}
	buf, err := AppendPostings(nil, ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != PostingsLen(ps, 0) {
		t.Errorf("PostingsLen = %d, encoded %d", PostingsLen(ps, 0), len(buf))
	}
	got, err := DecodePostings(buf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("decoded %d postings, want %d", len(got), len(ps))
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Errorf("posting %d = %+v, want %+v", i, got[i], ps[i])
		}
	}
}

func TestPostingsWithBase(t *testing.T) {
	ps := []Posting{{100, 2}, {101, 5}}
	buf, err := AppendPostings(nil, ps, 90)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePostings(buf, 90, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 100 || got[1].ID != 101 {
		t.Fatalf("decoded ids %d,%d", got[0].ID, got[1].ID)
	}
	// Decoding with the wrong base shifts ids — callers must store the base.
	got, err = DecodePostings(buf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 10 {
		t.Fatalf("wrong-base decode gave id %d, want 10", got[0].ID)
	}
}

func TestPostingsRejectNonMonotonic(t *testing.T) {
	if _, err := AppendPostings(nil, []Posting{{5, 1}, {5, 1}}, 0); err == nil {
		t.Error("equal ids accepted")
	}
	if _, err := AppendPostings(nil, []Posting{{5, 1}, {4, 1}}, 0); err == nil {
		t.Error("decreasing ids accepted")
	}
	if _, err := AppendPostings(nil, []Posting{{5, 1}}, 5); err == nil {
		t.Error("id equal to base accepted")
	}
}

func TestPostingsRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		ps := make([]Posting, 0, n)
		id := uint32(0)
		for i := 0; i < n; i++ {
			id += uint32(1 + rng.Intn(1000))
			ps = append(ps, Posting{ID: id, Length: uint32(rng.Intn(30))})
		}
		buf, err := AppendPostings(nil, ps, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodePostings(buf, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ps) {
			t.Fatalf("trial %d: decoded %d of %d", trial, len(got), len(ps))
		}
		for i := range ps {
			if got[i] != ps[i] {
				t.Fatalf("trial %d posting %d: %+v != %+v", trial, i, got[i], ps[i])
			}
		}
	}
}

func TestDecodePostingsErrors(t *testing.T) {
	buf, err := AppendPostings(nil, []Posting{{128, 300}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(buf); i++ {
		if _, err := DecodePostings(buf[:i], 0, nil); err == nil {
			t.Errorf("truncated decode at %d succeeded", i)
		}
	}
	// A zero gap is an encoding corruption.
	bad := AppendUint32(nil, 0)
	bad = AppendUint32(bad, 1)
	if _, err := DecodePostings(bad, 0, nil); err == nil {
		t.Error("zero-gap stream decoded without error")
	}
}

func TestCompressionEffectiveness(t *testing.T) {
	// Dense id runs (small d-gaps) must compress to about 2 bytes per
	// posting — the property the paper's §3 relies on ("their average
	// d-gaps are smaller").
	ps := make([]Posting, 1000)
	for i := range ps {
		ps[i] = Posting{ID: uint32(i + 1), Length: 5}
	}
	buf, err := AppendPostings(nil, ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 2000 {
		t.Fatalf("dense run encoded to %d bytes, want 2000", len(buf))
	}
}

func BenchmarkAppendPostings(b *testing.B) {
	ps := make([]Posting, 1024)
	id := uint32(0)
	rng := rand.New(rand.NewSource(1))
	for i := range ps {
		id += uint32(1 + rng.Intn(50))
		ps[i] = Posting{ID: id, Length: uint32(2 + rng.Intn(18))}
	}
	buf := make([]byte, 0, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = AppendPostings(buf, ps, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePostings(b *testing.B) {
	ps := make([]Posting, 1024)
	id := uint32(0)
	rng := rand.New(rand.NewSource(1))
	for i := range ps {
		id += uint32(1 + rng.Intn(50))
		ps[i] = Posting{ID: id, Length: uint32(2 + rng.Intn(18))}
	}
	buf, err := AppendPostings(nil, ps, 0)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]Posting, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = out[:0]
		out, err = DecodePostings(buf, 0, out)
		if err != nil {
			b.Fatal(err)
		}
	}
}
