package vbyte

import (
	"errors"
	"fmt"
)

// Posting is one inverted-list entry: a record id plus the record's set
// cardinality. The paper extends the classic inverted file with the length
// "so that equality and superset queries can be processed" (§2, after
// Helmer & Moerkotte), and the OIF keeps the same payload per block (§5:
// "Each inverted list is populated by postings which are comprised by the
// id and the length of the records").
type Posting struct {
	ID     uint32 // record id (1-based; 0 is reserved)
	Length uint32 // cardinality of the record's set
}

// ErrNonMonotonic reports posting ids that are not strictly increasing,
// which d-gap coding requires.
var ErrNonMonotonic = errors.New("vbyte: posting ids not strictly increasing")

// AppendPostings appends the compressed encoding of postings to dst.
// Ids are delta-coded against prev (pass 0 for a fresh list or block head;
// the paper notes OIF blocks store their first id explicitly, which callers
// achieve by passing prev = 0 per block) and then v-byte coded; lengths are
// v-byte coded directly.
func AppendPostings(dst []byte, postings []Posting, prev uint32) ([]byte, error) {
	last := prev
	for _, p := range postings {
		if p.ID <= last {
			return nil, fmt.Errorf("%w: id %d after %d", ErrNonMonotonic, p.ID, last)
		}
		dst = AppendUint32(dst, p.ID-last)
		dst = AppendUint32(dst, p.Length)
		last = p.ID
	}
	return dst, nil
}

// DecodePostings decodes every posting in buf, delta-decoding ids against
// prev, appending to out (which may be nil) and returning the result.
func DecodePostings(buf []byte, prev uint32, out []Posting) ([]Posting, error) {
	last := prev
	for len(buf) > 0 {
		gap, n, err := Uint32(buf)
		if err != nil {
			return nil, fmt.Errorf("vbyte: posting id gap: %w", err)
		}
		buf = buf[n:]
		length, n, err := Uint32(buf)
		if err != nil {
			return nil, fmt.Errorf("vbyte: posting length: %w", err)
		}
		buf = buf[n:]
		if gap == 0 {
			return nil, fmt.Errorf("%w: zero gap", ErrNonMonotonic)
		}
		last += gap
		out = append(out, Posting{ID: last, Length: length})
	}
	return out, nil
}

// DecodePostingsInto is the bulk fast path of DecodePostings: it decodes
// every posting in buf into out (a reusable arena slice; may be nil),
// delta-decoding ids against prev. The loop is index-based with the
// length hoisted out, takes a branch-free single-byte fast path for both
// the id gap and the length (the common case under v-byte: gaps and
// cardinalities below 128), and defers all error wrapping to the cold
// exit paths — no per-posting error checks or allocations. Decoded
// output and error classification are identical to DecodePostings
// (FuzzDecodePostings pins the equivalence); only the error message
// prose differs.
func DecodePostingsInto(buf []byte, prev uint32, out []Posting) ([]Posting, error) {
	last := prev
	i, n := 0, len(buf)
	for i < n {
		var gap, length uint32
		if b := buf[i]; b < 0x80 {
			gap = uint32(b)
			i++
		} else {
			g, w, err := uint32Multi(buf[i:])
			if err != nil {
				return nil, fmt.Errorf("vbyte: posting id gap: %w", err)
			}
			gap = g
			i += w
		}
		if i < n && buf[i] < 0x80 {
			length = uint32(buf[i])
			i++
		} else {
			l, w, err := uint32Multi(buf[i:])
			if err != nil {
				return nil, fmt.Errorf("vbyte: posting length: %w", err)
			}
			length = l
			i += w
		}
		if gap == 0 {
			return nil, fmt.Errorf("%w: zero gap", ErrNonMonotonic)
		}
		last += gap
		out = append(out, Posting{ID: last, Length: length})
	}
	return out, nil
}

// PostingsLen returns the encoded byte size of postings without encoding.
func PostingsLen(postings []Posting, prev uint32) int {
	n := 0
	last := prev
	for _, p := range postings {
		n += Len64(uint64(p.ID - last))
		n += Len64(uint64(p.Length))
		last = p.ID
	}
	return n
}
