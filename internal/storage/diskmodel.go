package storage

import "time"

// DiskModel converts a page-access trace into estimated I/O time. The paper
// reports query time split into CPU and I/O on a c. 2010 magnetic disk;
// since our substrate is simulated, we apply an explicit model instead:
// every random miss pays a positioning latency (seek + rotation), every
// sequential miss pays only the transfer time of one page.
//
// The defaults approximate a 7200 rpm SATA disk of the paper's era:
// ~8 ms average positioning, ~35 MB/s effective sequential transfer
// (≈0.11 ms per 4 KB page). The conclusions drawn in EXPERIMENTS.md are
// about shapes and ratios, which are insensitive to the exact constants.
type DiskModel struct {
	// RandomLatency is charged per far (full-seek) page miss.
	RandomLatency time.Duration
	// NearLatency is charged per near miss: a jump of at most NearWindow
	// pages, served by a short-stroke seek or the drive's track cache.
	// The paper relies on this regime — it leaves the hard-disk cache
	// enabled and observes that the OIF's extra random accesses have a
	// "quite limited" effect.
	NearLatency time.Duration
	// SequentialLatency is charged per sequential page miss.
	SequentialLatency time.Duration
	// WriteLatency is charged per page write-back (used by the update
	// experiments; treated as sequential by default batch writers).
	WriteLatency time.Duration
}

// DefaultDiskModel returns the constants described on DiskModel. The
// random figure is a within-file seek, not a full-platter stroke: every
// index file here is far smaller than a platter, so a "far" jump is a
// short-stroke seek (~1-3 ms) plus half-rotation (~4.2 ms at 7200 rpm),
// about 5 ms. Full-stroke randoms on such disks cost 12-13 ms, but never
// occur inside one file.
func DefaultDiskModel() DiskModel {
	return DiskModel{
		RandomLatency:     5 * time.Millisecond,
		NearLatency:       1 * time.Millisecond,
		SequentialLatency: 110 * time.Microsecond,
		WriteLatency:      110 * time.Microsecond,
	}
}

// Time returns the modelled I/O time of a trace.
func (m DiskModel) Time(s AccessStats) time.Duration {
	return time.Duration(s.RandMisses)*m.RandomLatency +
		time.Duration(s.NearMisses)*m.NearLatency +
		time.Duration(s.SeqMisses)*m.SequentialLatency +
		time.Duration(s.Writes)*m.WriteLatency
}
