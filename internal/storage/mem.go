package storage

// MemPager is an in-memory Pager. It is the workhorse of the experimental
// harness: queries run against a MemPager behind a BufferPool, so that
// measured wall time approximates pure CPU time while the buffer pool still
// records the page-access trace that the disk model converts to I/O time.
type MemPager struct {
	pageSize int
	pages    [][]byte
	closed   bool
}

// NewMemPager returns an empty in-memory pager with the given page size.
// A non-positive pageSize selects DefaultPageSize.
func NewMemPager(pageSize int) *MemPager {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemPager{pageSize: pageSize}
}

// PageSize implements Pager.
func (m *MemPager) PageSize() int { return m.pageSize }

// NumPages implements Pager.
func (m *MemPager) NumPages() int64 { return int64(len(m.pages)) }

// Allocate implements Pager.
func (m *MemPager) Allocate() (PageID, error) {
	if m.closed {
		return InvalidPageID, ErrClosed
	}
	m.pages = append(m.pages, make([]byte, m.pageSize))
	return PageID(len(m.pages) - 1), nil
}

// ReadPage implements Pager.
func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	if m.closed {
		return ErrClosed
	}
	if err := checkPage(m, id, buf); err != nil {
		return err
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Pager.
func (m *MemPager) WritePage(id PageID, buf []byte) error {
	if m.closed {
		return ErrClosed
	}
	if err := checkPage(m, id, buf); err != nil {
		return err
	}
	copy(m.pages[id], buf)
	return nil
}

// Sync implements Pager. It is a no-op for memory.
func (m *MemPager) Sync() error {
	if m.closed {
		return ErrClosed
	}
	return nil
}

// Close implements Pager.
func (m *MemPager) Close() error {
	m.closed = true
	m.pages = nil
	return nil
}
