package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

func testPagerBasics(t *testing.T, p Pager) {
	t.Helper()
	if p.NumPages() != 0 {
		t.Fatalf("fresh pager has %d pages, want 0", p.NumPages())
	}
	id0, err := p.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if id0 != 0 {
		t.Fatalf("first page id = %d, want 0", id0)
	}
	id1, err := p.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if id1 != 1 {
		t.Fatalf("second page id = %d, want 1", id1)
	}

	buf := make([]byte, p.PageSize())
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := p.WritePage(id1, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, p.PageSize())
	if err := p.ReadPage(id1, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("read back different bytes than written")
	}
	// Page 0 must still be zeroed.
	if err := p.ReadPage(id0, got); err != nil {
		t.Fatalf("ReadPage(0): %v", err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("page 0 byte %d = %d, want 0", i, b)
		}
	}
}

func testPagerErrors(t *testing.T, p Pager) {
	t.Helper()
	buf := make([]byte, p.PageSize())
	if err := p.ReadPage(PageID(p.NumPages()), buf); err == nil {
		t.Error("ReadPage past end succeeded, want error")
	}
	if err := p.ReadPage(-1, buf); err == nil {
		t.Error("ReadPage(-1) succeeded, want error")
	}
	short := make([]byte, p.PageSize()-1)
	if _, err := p.Allocate(); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := p.ReadPage(0, short); err == nil {
		t.Error("ReadPage with short buffer succeeded, want error")
	}
	if err := p.WritePage(0, short); err == nil {
		t.Error("WritePage with short buffer succeeded, want error")
	}
}

func TestMemPagerBasics(t *testing.T)  { testPagerBasics(t, NewMemPager(512)) }
func TestMemPagerErrors(t *testing.T)  { testPagerErrors(t, NewMemPager(512)) }
func TestFilePagerBasics(t *testing.T) { testPagerBasics(t, newTempFilePager(t, 512)) }
func TestFilePagerErrors(t *testing.T) { testPagerErrors(t, newTempFilePager(t, 512)) }

func newTempFilePager(t *testing.T, pageSize int) *FilePager {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := CreateFilePager(path, pageSize)
	if err != nil {
		t.Fatalf("CreateFilePager: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestFilePagerReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := CreateFilePager(path, 256)
	if err != nil {
		t.Fatalf("CreateFilePager: %v", err)
	}
	want := make([]byte, 256)
	for i := range want {
		want[i] = byte(i)
	}
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p.WritePage(1, want); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := OpenFilePager(path, 256)
	if err != nil {
		t.Fatalf("OpenFilePager: %v", err)
	}
	defer q.Close()
	if q.NumPages() != 2 {
		t.Fatalf("reopened pager has %d pages, want 2", q.NumPages())
	}
	got := make([]byte, 256)
	if err := q.ReadPage(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("reopened page contents differ")
	}
}

func TestFilePagerOpenBadSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := CreateFilePager(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := OpenFilePager(path, 512); err == nil {
		t.Fatal("OpenFilePager with mismatched page size succeeded, want error")
	}
}

func TestMemPagerClosed(t *testing.T) {
	p := NewMemPager(128)
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(); err == nil {
		t.Error("Allocate after Close succeeded")
	}
	if err := p.ReadPage(0, make([]byte, 128)); err == nil {
		t.Error("ReadPage after Close succeeded")
	}
}

func TestBufferPoolHitsAndMisses(t *testing.T) {
	pool := NewBufferPool(NewMemPager(128), 2)
	for i := 0; i < 3; i++ {
		if _, err := pool.Pager().Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	// First touch of each page is a miss.
	for i := PageID(0); i < 3; i++ {
		b, err := pool.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		_ = b
		pool.Put(i)
	}
	s := pool.Stats()
	if s.Misses != 3 || s.Hits != 0 {
		t.Fatalf("stats after cold reads: %v, want 3 misses 0 hits", s)
	}
	if s.SeqMisses != 2 || s.RandMisses != 1 {
		t.Fatalf("sequentiality: %v, want 2 seq 1 rand", s)
	}
	// Page 2 is hot (capacity 2 kept pages 1,2); page 0 was evicted.
	if _, err := pool.Get(2); err != nil {
		t.Fatal(err)
	}
	pool.Put(2)
	if got := pool.Stats().Hits; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	pool.Put(0)
	st := pool.Stats()
	if st.Misses != 4 {
		t.Fatalf("misses = %d, want 4 after LRU eviction", st.Misses)
	}
	// The re-read of page 0 jumped back 2 pages: a near miss.
	if st.NearMisses != 1 {
		t.Fatalf("near misses = %d, want 1", st.NearMisses)
	}
}

func TestBufferPoolWriteBack(t *testing.T) {
	mem := NewMemPager(64)
	pool := NewBufferPool(mem, 1)
	id, data, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(data, []byte("hello"))
	pool.MarkDirty(id)
	pool.Put(id)

	// Force eviction by touching another page.
	id2, _, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(id2)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, 64)
	if err := mem.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Fatalf("written-back page = %q, want hello prefix", got[:5])
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	pool := NewBufferPool(NewMemPager(64), 2)
	id0, _, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	// id0 stays pinned. Fill the rest of the pool and keep going; the pool
	// must evict around the pin.
	for i := 0; i < 4; i++ {
		id, _, err := pool.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(id)
	}
	// The pinned page must still be resident: re-Get must be a hit.
	before := pool.Stats().Misses
	if _, err := pool.Get(id0); err != nil {
		t.Fatal(err)
	}
	pool.Put(id0)
	pool.Put(id0) // release the original pin
	if pool.Stats().Misses != before {
		t.Fatal("pinned page was evicted")
	}
}

func TestBufferPoolAllPinnedFails(t *testing.T) {
	pool := NewBufferPool(NewMemPager(64), 1)
	id, _, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	_ = id // keep pinned
	if _, _, err := pool.Allocate(); err == nil {
		t.Fatal("Allocate with all frames pinned succeeded, want error")
	}
}

func TestBufferPoolDropAll(t *testing.T) {
	mem := NewMemPager(64)
	pool := NewBufferPool(mem, 4)
	id, data, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(data, []byte("persist"))
	pool.MarkDirty(id)
	pool.Put(id)
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	b, err := pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Put(id)
	if string(b[:7]) != "persist" {
		t.Fatal("DropAll lost dirty data")
	}
	if pool.Stats().Misses != 1 {
		t.Fatal("page survived DropAll in cache")
	}
}

func TestBufferPoolRandomizedAgainstPager(t *testing.T) {
	// Property: a pool over a pager behaves exactly like the pager alone.
	rng := rand.New(rand.NewSource(42))
	mem := NewMemPager(32)
	pool := NewBufferPool(mem, 3)
	shadow := make(map[PageID][]byte)

	var ids []PageID
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ids) == 0:
			id, data, err := pool.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			rng.Read(data)
			pool.MarkDirty(id)
			pool.Put(id)
			cp := make([]byte, 32)
			b, err := pool.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			copy(cp, b)
			pool.Put(id)
			shadow[id] = cp
			ids = append(ids, id)
		case op == 1:
			id := ids[rng.Intn(len(ids))]
			b, err := pool.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, shadow[id]) {
				t.Fatalf("step %d: page %d contents diverged", step, id)
			}
			pool.Put(id)
		default:
			id := ids[rng.Intn(len(ids))]
			b, err := pool.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			rng.Read(b)
			cp := make([]byte, 32)
			copy(cp, b)
			shadow[id] = cp
			pool.MarkDirty(id)
			pool.Put(id)
		}
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	// After flush the raw pager must agree with the shadow.
	buf := make([]byte, 32)
	for id, want := range shadow {
		if err := mem.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("after flush page %d differs", id)
		}
	}
}

func TestAccessStatsArithmetic(t *testing.T) {
	a := AccessStats{Hits: 10, Misses: 5, SeqMisses: 3, NearMisses: 1, RandMisses: 2, Writes: 1}
	b := AccessStats{Hits: 4, Misses: 2, SeqMisses: 1, NearMisses: 1, RandMisses: 1, Writes: 0}
	d := a.Sub(b)
	if d.Hits != 6 || d.Misses != 3 || d.SeqMisses != 2 || d.NearMisses != 0 || d.RandMisses != 1 || d.Writes != 1 {
		t.Fatalf("Sub = %+v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Fatalf("Add(Sub) = %+v, want %+v", s, a)
	}
	if a.Accesses() != 15 {
		t.Fatalf("Accesses = %d, want 15", a.Accesses())
	}
}

func TestDiskModelTime(t *testing.T) {
	m := DiskModel{
		RandomLatency:     10 * time.Millisecond,
		NearLatency:       3 * time.Millisecond,
		SequentialLatency: 1 * time.Millisecond,
		WriteLatency:      2 * time.Millisecond,
	}
	s := AccessStats{RandMisses: 3, NearMisses: 2, SeqMisses: 5, Writes: 2}
	want := 3*10*time.Millisecond + 2*3*time.Millisecond + 5*time.Millisecond + 2*2*time.Millisecond
	if got := m.Time(s); got != want {
		t.Fatalf("Time = %v, want %v", got, want)
	}
	def := DefaultDiskModel()
	if def.RandomLatency <= def.NearLatency || def.NearLatency <= def.SequentialLatency {
		t.Fatal("default model must order random > near > sequential")
	}
}

func TestBufferPoolPutAccounting(t *testing.T) {
	pool := NewBufferPool(NewMemPager(64), 2)
	id, _, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Put(id); err != nil {
		t.Fatalf("balanced Put: %v", err)
	}
	// A second Put of the now-unpinned page is a pin-balance bug.
	if err := pool.Put(id); err == nil {
		t.Fatal("Put of unpinned page returned nil")
	}
	// A Put of a page that was never fetched is likewise an error.
	if err := pool.Put(PageID(999)); err == nil {
		t.Fatal("Put of non-resident page returned nil")
	}
}

func TestBufferPoolFailedReadNotCounted(t *testing.T) {
	mem := NewMemPager(64)
	for i := 0; i < 3; i++ {
		if _, err := mem.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	faulty := NewFaultyPager(mem, 0)
	pool := NewBufferPool(faulty, 2)
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	if err := pool.Put(0); err != nil {
		t.Fatal(err)
	}
	base := pool.Stats()

	// Arm the fault: the next pager read fails. The failed fetch must not
	// count as a miss nor advance the sequentiality tracker.
	faulty.FailAt = faulty.Ops() + 1
	if _, err := pool.Get(2); err == nil {
		t.Fatal("expected read fault")
	}
	if got := pool.Stats(); got != base {
		t.Fatalf("stats changed across failed read: %v -> %v", base, got)
	}

	// After the device recovers, reading page 1 is sequential relative to
	// the last *successful* miss (page 0), proving the failed probe of
	// page 2 did not advance lastMiss.
	faulty.Reset()
	if _, err := pool.Get(1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Put(1); err != nil {
		t.Fatal(err)
	}
	st := pool.Stats().Sub(base)
	if st.Misses != 1 || st.SeqMisses != 1 {
		t.Fatalf("post-recovery delta %v, want 1 sequential miss", st)
	}
}

func TestBufferPoolFrameRecycling(t *testing.T) {
	mem := NewMemPager(4096)
	const pages = 16
	for i := 0; i < pages; i++ {
		if _, err := mem.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	pool := NewBufferPool(mem, 2)
	// Warm up: fill the pool and force the free-list to grow via
	// evictions.
	for i := PageID(0); i < pages; i++ {
		if _, err := pool.Get(i); err != nil {
			t.Fatal(err)
		}
		if err := pool.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	// Steady-state miss traffic must not allocate page buffers: every
	// miss recycles an evicted frame.
	next := PageID(0)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := pool.Get(next); err != nil {
			t.Fatal(err)
		}
		if err := pool.Put(next); err != nil {
			t.Fatal(err)
		}
		next = (next + 1) % pages
	})
	if allocs != 0 {
		t.Fatalf("steady-state misses allocated %.1f times per run", allocs)
	}
}

func TestBufferPoolDropAllRecyclesFrames(t *testing.T) {
	mem := NewMemPager(1024)
	for i := 0; i < 4; i++ {
		if _, err := mem.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	pool := NewBufferPool(mem, 4)
	for i := PageID(0); i < 4; i++ {
		if _, err := pool.Get(i); err != nil {
			t.Fatal(err)
		}
		if err := pool.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.DropAll(); err != nil {
		t.Fatal(err)
	}
	// Re-reading after DropAll reuses the dropped frames.
	allocs := testing.AllocsPerRun(1, func() {
		for i := PageID(0); i < 4; i++ {
			if _, err := pool.Get(i); err != nil {
				t.Fatal(err)
			}
			if err := pool.Put(i); err != nil {
				t.Fatal(err)
			}
		}
		if err := pool.DropAll(); err != nil {
			t.Fatal(err)
		}
	})
	// DropAll rebuilds its small frames map (~2 allocations); the page
	// buffers themselves must all come from the free-list.
	if allocs > 2 {
		t.Fatalf("post-DropAll reads allocated %.1f times per run", allocs)
	}
}

func TestBufferPoolAllocateZeroesRecycledFrames(t *testing.T) {
	mem := NewMemPager(128)
	pool := NewBufferPool(mem, 1)
	id, data, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xAB
	}
	pool.MarkDirty(id)
	if err := pool.Put(id); err != nil {
		t.Fatal(err)
	}
	// Evict the dirtied frame into the free-list, then allocate: the
	// recycled buffer must come back zeroed.
	if _, err := mem.Allocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Get(1); err != nil {
		t.Fatal(err)
	}
	if err := pool.Put(1); err != nil {
		t.Fatal(err)
	}
	_, fresh, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range fresh {
		if b != 0 {
			t.Fatalf("recycled Allocate buffer byte %d = %#x, want 0", i, b)
		}
	}
}
