package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrInjected is the sentinel returned by FaultyPager when a fault fires.
var ErrInjected = errors.New("storage: injected fault")

// FaultyPager wraps a Pager and fails the Nth I/O operation (1-based),
// counting reads, writes and allocations. Tests use it to verify that
// every index surfaces storage errors instead of panicking or corrupting
// results. After firing once it keeps failing, modelling a dead device.
type FaultyPager struct {
	Inner   Pager
	FailAt  int64 // operation number that fails; 0 disables
	ops     atomic.Int64
	tripped atomic.Bool
}

// NewFaultyPager wraps inner, failing the failAt-th operation.
func NewFaultyPager(inner Pager, failAt int64) *FaultyPager {
	return &FaultyPager{Inner: inner, FailAt: failAt}
}

// Ops returns the number of operations attempted so far.
func (f *FaultyPager) Ops() int64 { return f.ops.Load() }

// Reset disarms the fault and clears the tripped state; the operation
// counter keeps running. Set FailAt relative to Ops() to re-arm.
func (f *FaultyPager) Reset() {
	f.FailAt = 0
	f.tripped.Store(false)
}

// Tripped reports whether the fault has fired.
func (f *FaultyPager) Tripped() bool { return f.tripped.Load() }

func (f *FaultyPager) step(op string) error {
	n := f.ops.Add(1)
	if f.tripped.Load() || (f.FailAt > 0 && n >= f.FailAt) {
		f.tripped.Store(true)
		return fmt.Errorf("%w: %s (op %d)", ErrInjected, op, n)
	}
	return nil
}

// PageSize implements Pager.
func (f *FaultyPager) PageSize() int { return f.Inner.PageSize() }

// NumPages implements Pager.
func (f *FaultyPager) NumPages() int64 { return f.Inner.NumPages() }

// Allocate implements Pager.
func (f *FaultyPager) Allocate() (PageID, error) {
	if err := f.step("allocate"); err != nil {
		return InvalidPageID, err
	}
	return f.Inner.Allocate()
}

// ReadPage implements Pager.
func (f *FaultyPager) ReadPage(id PageID, buf []byte) error {
	if err := f.step("read"); err != nil {
		return err
	}
	return f.Inner.ReadPage(id, buf)
}

// WritePage implements Pager.
func (f *FaultyPager) WritePage(id PageID, buf []byte) error {
	if err := f.step("write"); err != nil {
		return err
	}
	return f.Inner.WritePage(id, buf)
}

// Sync implements Pager.
func (f *FaultyPager) Sync() error {
	if err := f.step("sync"); err != nil {
		return err
	}
	return f.Inner.Sync()
}

// Close implements Pager.
func (f *FaultyPager) Close() error { return f.Inner.Close() }
