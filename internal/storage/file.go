package storage

import (
	"fmt"
	"os"
)

// FilePager is a Pager backed by a single file on disk. It exists so the
// indexes can also be run against real storage (cmd/oifquery uses it); the
// experimental harness prefers MemPager + BufferPool, where I/O cost is
// modelled rather than incurred.
type FilePager struct {
	f        *os.File
	pageSize int
	nPages   int64
	closed   bool
}

// CreateFilePager creates (truncating) the file at path and returns an
// empty pager over it. A non-positive pageSize selects DefaultPageSize.
func CreateFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create file pager: %w", err)
	}
	return &FilePager{f: f, pageSize: pageSize}, nil
}

// OpenFilePager opens an existing pager file. The caller must supply the
// same page size the file was created with; the file length must be a
// multiple of it.
func OpenFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open file pager: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat file pager: %w", err)
	}
	if info.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: file size %d not a multiple of page size %d", info.Size(), pageSize)
	}
	return &FilePager{f: f, pageSize: pageSize, nPages: info.Size() / int64(pageSize)}, nil
}

// PageSize implements Pager.
func (p *FilePager) PageSize() int { return p.pageSize }

// NumPages implements Pager.
func (p *FilePager) NumPages() int64 { return p.nPages }

// Allocate implements Pager.
func (p *FilePager) Allocate() (PageID, error) {
	if p.closed {
		return InvalidPageID, ErrClosed
	}
	id := PageID(p.nPages)
	zero := make([]byte, p.pageSize)
	if _, err := p.f.WriteAt(zero, int64(id)*int64(p.pageSize)); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	p.nPages++
	return id, nil
}

// ReadPage implements Pager.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	if err := checkPage(p, id, buf); err != nil {
		return err
	}
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Pager.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	if p.closed {
		return ErrClosed
	}
	if err := checkPage(p, id, buf); err != nil {
		return err
	}
	if _, err := p.f.WriteAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Sync implements Pager.
func (p *FilePager) Sync() error {
	if p.closed {
		return ErrClosed
	}
	return p.f.Sync()
}

// Close implements Pager.
func (p *FilePager) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	return p.f.Close()
}
