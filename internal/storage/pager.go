// Package storage provides the paging substrate shared by every index in
// this repository: fixed-size pages, in-memory and file-backed pagers, an
// LRU buffer pool that accounts for disk page accesses the way the paper
// measures them (cache misses, split into sequential and random), and a
// configurable disk model that converts an access trace into estimated I/O
// time.
//
// The paper (§5) evaluates all indexes on Berkeley DB with the database
// cache set to the minimum (32 KB) and reports "the actual disk page
// accesses, reported as cache misses by the database". BufferPool
// reproduces exactly that measurement.
package storage

import (
	"errors"
	"fmt"
)

// PageID identifies a fixed-size page within a pager. Pages are numbered
// densely from 0 in allocation order.
type PageID int64

// InvalidPageID is the zero-like sentinel for "no page".
const InvalidPageID PageID = -1

// DefaultPageSize is the page size used throughout the repository unless a
// caller overrides it. 4 KB matches the Berkeley DB default used by the
// paper's implementation.
const DefaultPageSize = 4096

// Common pager errors.
var (
	ErrPageOutOfRange = errors.New("storage: page id out of range")
	ErrBadPageSize    = errors.New("storage: buffer size does not match page size")
	ErrClosed         = errors.New("storage: pager is closed")
)

// Pager is the raw page I/O interface. Implementations must support dense
// allocation and random reads/writes of whole pages. Pagers are not safe
// for concurrent use; indexes in this repository serialise access through
// their own structures.
type Pager interface {
	// PageSize returns the fixed size of every page in bytes.
	PageSize() int

	// NumPages returns the number of allocated pages.
	NumPages() int64

	// Allocate extends the pager by one zeroed page and returns its id.
	Allocate() (PageID, error)

	// ReadPage fills buf (which must be exactly PageSize bytes) with the
	// contents of page id.
	ReadPage(id PageID, buf []byte) error

	// WritePage stores buf (exactly PageSize bytes) as the contents of
	// page id. The page must have been allocated.
	WritePage(id PageID, buf []byte) error

	// Sync flushes any buffered writes to stable storage.
	Sync() error

	// Close releases resources. The pager is unusable afterwards.
	Close() error
}

func checkPage(p Pager, id PageID, buf []byte) error {
	if len(buf) != p.PageSize() {
		return fmt.Errorf("%w: got %d, want %d", ErrBadPageSize, len(buf), p.PageSize())
	}
	if id < 0 || int64(id) >= p.NumPages() {
		return fmt.Errorf("%w: page %d of %d", ErrPageOutOfRange, id, p.NumPages())
	}
	return nil
}
