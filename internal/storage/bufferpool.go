package storage

import (
	"fmt"
)

// AccessStats records how a BufferPool has touched its backing pager.
// Misses model disk page accesses; the paper distinguishes sequential
// accesses from random ones (a seek), which is the basis of the disk
// model. Misses are classified by jump distance from the previous miss:
// sequential (+1 page), near (within NearWindow pages — a short-stroke
// seek that the era's disks served from track cache at ~1 ms) or random
// (a full seek).
type AccessStats struct {
	Hits       int64 // page found in the pool
	Misses     int64 // page fetched from the pager (a "disk page access")
	SeqMisses  int64 // misses whose page id is exactly lastMiss+1
	NearMisses int64 // misses within NearWindow pages of the last miss
	RandMisses int64 // all other misses
	Writes     int64 // dirty pages written back to the pager
}

// NearWindow is the jump distance (in pages) under which a miss counts as
// near rather than random: 256 x 4 KB = 1 MB, about one disk track.
const NearWindow = 256

// Accesses returns total page requests served (hits + misses).
func (s AccessStats) Accesses() int64 { return s.Hits + s.Misses }

// Sub returns s - t, useful for per-query deltas around a snapshot.
func (s AccessStats) Sub(t AccessStats) AccessStats {
	return AccessStats{
		Hits:       s.Hits - t.Hits,
		Misses:     s.Misses - t.Misses,
		SeqMisses:  s.SeqMisses - t.SeqMisses,
		NearMisses: s.NearMisses - t.NearMisses,
		RandMisses: s.RandMisses - t.RandMisses,
		Writes:     s.Writes - t.Writes,
	}
}

// Add returns s + t.
func (s AccessStats) Add(t AccessStats) AccessStats {
	return AccessStats{
		Hits:       s.Hits + t.Hits,
		Misses:     s.Misses + t.Misses,
		SeqMisses:  s.SeqMisses + t.SeqMisses,
		NearMisses: s.NearMisses + t.NearMisses,
		RandMisses: s.RandMisses + t.RandMisses,
		Writes:     s.Writes + t.Writes,
	}
}

func (s AccessStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d (seq=%d near=%d rand=%d) writes=%d",
		s.Hits, s.Misses, s.SeqMisses, s.NearMisses, s.RandMisses, s.Writes)
}

// frame is one cached page plus its LRU bookkeeping.
type frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	// intrusive doubly-linked LRU list (head = most recent)
	prev, next *frame
}

// BufferPool caches a fixed number of pages over a Pager with LRU
// replacement and write-back of dirty pages. It is the measurement point of
// the whole repository: every index reads pages exclusively through a pool,
// and AccessStats.Misses is the paper's "disk page accesses".
//
// Pinned pages are exempt from eviction; callers pin at most a handful of
// pages at a time (a B-tree root-to-leaf path), which must be smaller than
// the pool. The zero value is not usable; use NewBufferPool.
type BufferPool struct {
	pager     Pager
	capacity  int
	frames    map[PageID]*frame
	lruHead   *frame
	lruTail   *frame
	stats     AccessStats
	lastMiss  PageID
	interrupt func() error

	// free recycles evicted frames (and their page buffers) so a steady
	// stream of misses re-reads into existing memory instead of calling
	// make([]byte, pageSize) per miss — the frame free-list of the
	// zero-allocation query path. Bounded by capacity.
	free []*frame
}

// DefaultPoolPages mirrors the paper's minimum Berkeley DB cache: 32 KB,
// i.e. 8 pages of 4 KB.
const DefaultPoolPages = 8

// NewBufferPool wraps pager with an LRU cache of capacity pages.
// A non-positive capacity selects DefaultPoolPages.
func NewBufferPool(pager Pager, capacity int) *BufferPool {
	if capacity <= 0 {
		capacity = DefaultPoolPages
	}
	return &BufferPool{
		pager:    pager,
		capacity: capacity,
		frames:   make(map[PageID]*frame, capacity),
		lastMiss: InvalidPageID,
	}
}

// Pager returns the backing pager.
func (bp *BufferPool) Pager() Pager { return bp.pager }

// Capacity returns the pool size in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// PageSize returns the backing pager's page size.
func (bp *BufferPool) PageSize() int { return bp.pager.PageSize() }

// Stats returns the accumulated access statistics.
func (bp *BufferPool) Stats() AccessStats { return bp.stats }

// ResetStats zeroes the statistics and the sequentiality tracker. The page
// cache itself is not touched; use DropAll to also empty the cache (a "cold
// cache" measurement, as between the paper's queries).
func (bp *BufferPool) ResetStats() {
	bp.stats = AccessStats{}
	bp.lastMiss = InvalidPageID
}

// AddStats folds s into the pool's counters. It seeds a replacement pool
// with its predecessor's totals — how MergeDelta keeps an engine's
// cumulative I/O statistics monotone across the page-file swap — without
// touching the sequentiality tracker.
func (bp *BufferPool) AddStats(s AccessStats) { bp.stats = bp.stats.Add(s) }

// DropAll flushes dirty pages and empties the cache so the next accesses
// start cold. It returns the first flush error encountered. The dropped
// frames' buffers are recycled for future misses.
func (bp *BufferPool) DropAll() error {
	if err := bp.Flush(); err != nil {
		return err
	}
	for id, f := range bp.frames {
		if f.pins > 0 {
			return fmt.Errorf("storage: DropAll with pinned page %d", id)
		}
	}
	for _, f := range bp.frames {
		bp.recycle(f)
	}
	bp.frames = make(map[PageID]*frame, bp.capacity)
	bp.lruHead, bp.lruTail = nil, nil
	return nil
}

// recycle returns an unlinked frame to the free-list (bounded by the
// pool capacity; beyond that the frame is left to the garbage collector).
func (bp *BufferPool) recycle(f *frame) {
	if len(bp.free) >= bp.capacity {
		return
	}
	f.id = InvalidPageID
	f.dirty = false
	f.pins = 0
	f.prev, f.next = nil, nil
	bp.free = append(bp.free, f)
}

// newFrame returns a frame for page id, reusing a recycled buffer when
// one is available. The data contents are unspecified; callers overwrite
// them (ReadPage) or zero them (Allocate).
func (bp *BufferPool) newFrame(id PageID) *frame {
	if n := len(bp.free); n > 0 {
		f := bp.free[n-1]
		bp.free[n-1] = nil
		bp.free = bp.free[:n-1]
		f.id = id
		return f
	}
	return &frame{id: id, data: make([]byte, bp.pager.PageSize())}
}

// lruUnlink removes f from the LRU list.
func (bp *BufferPool) lruUnlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else if bp.lruHead == f {
		bp.lruHead = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else if bp.lruTail == f {
		bp.lruTail = f.prev
	}
	f.prev, f.next = nil, nil
}

// lruPushFront makes f the most recently used frame.
func (bp *BufferPool) lruPushFront(f *frame) {
	f.prev = nil
	f.next = bp.lruHead
	if bp.lruHead != nil {
		bp.lruHead.prev = f
	}
	bp.lruHead = f
	if bp.lruTail == nil {
		bp.lruTail = f
	}
}

// touch marks f as most recently used.
func (bp *BufferPool) touch(f *frame) {
	if bp.lruHead == f {
		return
	}
	bp.lruUnlink(f)
	bp.lruPushFront(f)
}

// evictOne writes back and drops the least recently used unpinned frame.
func (bp *BufferPool) evictOne() error {
	for f := bp.lruTail; f != nil; f = f.prev {
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			if err := bp.pager.WritePage(f.id, f.data); err != nil {
				return err
			}
			bp.stats.Writes++
			f.dirty = false
		}
		bp.lruUnlink(f)
		delete(bp.frames, f.id)
		bp.recycle(f)
		return nil
	}
	return fmt.Errorf("storage: buffer pool of %d pages exhausted by pins", bp.capacity)
}

// SetInterrupt installs fn, consulted before every page request: a
// non-nil return aborts the request with that error, which propagates
// out of whatever query is driving the pool. Queries touch the pool
// between list-block reads, so this is the cancellation point for
// long-running scans (Store.Exec wires a context's Err here). Pass nil
// to clear. The hook is per-pool and therefore per-reader; it must only
// be changed while no request is in flight.
func (bp *BufferPool) SetInterrupt(fn func() error) { bp.interrupt = fn }

// fetch returns the frame for id, loading it on a miss. Statistics are
// classified only after the pager read succeeds: a failed ReadPage is
// not a disk page access, so it must neither count as a miss nor advance
// the sequentiality tracker (a retry after a transient fault would
// otherwise be misclassified against the failed position).
func (bp *BufferPool) fetch(id PageID) (*frame, error) {
	if bp.interrupt != nil {
		if err := bp.interrupt(); err != nil {
			return nil, err
		}
	}
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.touch(f)
		return f, nil
	}
	for len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return nil, err
		}
	}
	f := bp.newFrame(id)
	if err := bp.pager.ReadPage(id, f.data); err != nil {
		bp.recycle(f)
		return nil, err
	}
	bp.stats.Misses++
	switch delta := int64(id) - int64(bp.lastMiss); {
	case bp.lastMiss == InvalidPageID:
		bp.stats.RandMisses++
	case delta == 1:
		bp.stats.SeqMisses++
	case delta >= -NearWindow && delta <= NearWindow:
		bp.stats.NearMisses++
	default:
		bp.stats.RandMisses++
	}
	bp.lastMiss = id
	bp.frames[id] = f
	bp.lruPushFront(f)
	return f, nil
}

// Get pins page id and returns its bytes. The slice aliases the cached
// frame: the caller must not retain it past the matching Put, and must call
// MarkDirty (or use the Update helper) if it modifies the contents.
func (bp *BufferPool) Get(id PageID) ([]byte, error) {
	f, err := bp.fetch(id)
	if err != nil {
		return nil, err
	}
	f.pins++
	return f.data, nil
}

// Put unpins page id. Every Get must be paired with exactly one Put.
// A Put of a page that is not resident, or resident but not pinned,
// reports an accounting error instead of silently doing nothing: both
// indicate a pin-balance bug in the caller (pinned pages are exempt from
// eviction, so a correctly pinned page is always resident).
func (bp *BufferPool) Put(id PageID) error {
	f, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: Put of non-resident page %d", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("storage: Put of unpinned page %d", id)
	}
	f.pins--
	return nil
}

// MarkDirty records that page id was modified and must be written back.
func (bp *BufferPool) MarkDirty(id PageID) {
	if f, ok := bp.frames[id]; ok {
		f.dirty = true
	}
}

// Allocate creates a new zeroed page in the backing pager and caches it
// pinned; the caller must Put it. The page is marked dirty.
func (bp *BufferPool) Allocate() (PageID, []byte, error) {
	id, err := bp.pager.Allocate()
	if err != nil {
		return InvalidPageID, nil, err
	}
	for len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return InvalidPageID, nil, err
		}
	}
	f := bp.newFrame(id)
	clear(f.data) // recycled buffers carry stale bytes; new pages are zeroed
	f.dirty = true
	f.pins = 1
	bp.frames[id] = f
	bp.lruPushFront(f)
	return id, f.data, nil
}

// Flush writes back every dirty page without evicting anything.
func (bp *BufferPool) Flush() error {
	for _, f := range bp.frames {
		if !f.dirty {
			continue
		}
		if err := bp.pager.WritePage(f.id, f.data); err != nil {
			return err
		}
		bp.stats.Writes++
		f.dirty = false
	}
	return bp.pager.Sync()
}
