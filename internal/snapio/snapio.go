// Package snapio holds the byte-level plumbing every snapshot format in
// the repository shares: little-endian integer framing, length-prefixed
// uint32 slices with allocation bounds, and CRC32 accounting writers and
// readers whose trailer guards a whole stream. The OIF snapshot
// (internal/core), the inverted-file snapshot (internal/invfile), and
// the self-describing engine container (setcontain) are all spelled in
// this vocabulary, so their formats stay structurally identical and a
// corruption test written against one applies to all.
package snapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt reports a snapshot stream whose CRC trailer does not match
// the bytes read. Format packages wrap it with their own context.
var ErrCorrupt = errors.New("snapio: snapshot CRC mismatch")

// MaxSliceLen bounds slice headers so a corrupt stream cannot force a
// huge allocation before the CRC check has a chance to fail.
const MaxSliceLen = 1 << 31

// Writer accumulates a CRC32 (IEEE) over everything written through it.
type Writer struct {
	w   io.Writer
	crc uint32
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write implements io.Writer, folding p into the running CRC.
func (c *Writer) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Sum returns the CRC of everything written so far.
func (c *Writer) Sum() uint32 { return c.crc }

// WriteTrailer writes the accumulated CRC to the underlying writer
// (bypassing the CRC accounting — the trailer is not itself CRC'd).
func (c *Writer) WriteTrailer() error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], c.crc)
	_, err := c.w.Write(b[:])
	return err
}

// Reader accumulates a CRC32 (IEEE) over everything read through it.
type Reader struct {
	r   io.Reader
	crc uint32
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Read implements io.Reader, folding the bytes read into the CRC.
func (c *Reader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// Sum returns the CRC of everything read so far.
func (c *Reader) Sum() uint32 { return c.crc }

// VerifyTrailer reads the 4-byte CRC trailer from the underlying reader
// (not CRC'd itself) and checks it against the accumulated sum.
func (c *Reader) VerifyTrailer() error {
	want := c.crc
	var tail [4]byte
	if _, err := io.ReadFull(c.r, tail[:]); err != nil {
		return fmt.Errorf("%w: missing CRC trailer", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return fmt.Errorf("%w (stored %08x, computed %08x)", ErrCorrupt, got, want)
	}
	return nil
}

// WriteU32 writes v little-endian.
func WriteU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// WriteU64 writes v little-endian.
func WriteU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

// WriteU32Slice writes a u64 length header followed by the values.
func WriteU32Slice(w io.Writer, vals []uint32) error {
	if err := WriteU64(w, uint64(len(vals))); err != nil {
		return err
	}
	var buf [4 * 1024]byte
	for len(vals) > 0 {
		n := len(vals)
		if n > 1024 {
			n = 1024
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], vals[i])
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// ReadU32 reads one little-endian uint32.
func ReadU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// ReadU64 reads one little-endian uint64.
func ReadU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// ReadU32Slice reads a slice written by WriteU32Slice, rejecting length
// headers beyond MaxSliceLen.
func ReadU32Slice(r io.Reader) ([]uint32, error) {
	n, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	if n > MaxSliceLen {
		return nil, fmt.Errorf("snapio: slice of %d elements exceeds bound", n)
	}
	out := make([]uint32, n)
	var buf [4 * 1024]byte
	for i := uint64(0); i < n; {
		chunk := n - i
		if chunk > 1024 {
			chunk = 1024
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return nil, err
		}
		for j := uint64(0); j < chunk; j++ {
			out[i+j] = binary.LittleEndian.Uint32(buf[j*4:])
		}
		i += chunk
	}
	return out, nil
}

// WriteBytes writes a u64 length header followed by the raw bytes.
func WriteBytes(w io.Writer, b []byte) error {
	if err := WriteU64(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadBytes reads a byte block written by WriteBytes, rejecting length
// headers beyond MaxSliceLen.
func ReadBytes(r io.Reader) ([]byte, error) {
	n, err := ReadU64(r)
	if err != nil {
		return nil, err
	}
	if n > MaxSliceLen {
		return nil, fmt.Errorf("snapio: byte block of %d exceeds bound", n)
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}
