// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (§5) as testing.B benchmarks at a laptop
// scale. Each benchmark reports, besides ns/op, the metrics the paper
// plots: disk page accesses per query ("pages/op") and modelled I/O
// milliseconds per query ("io_ms/op"). Use cmd/oifbench for full
// parameter sweeps and larger scales.
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/storage"
	"repro/internal/workload"
	"repro/setcontain"
)

// benchCfg is the shared scale for the root benches: big enough for
// multi-page lists, small enough for quick runs.
func benchCfg() experiments.Config {
	cfg := experiments.DefaultConfig(io.Discard)
	cfg.Scale = 0.005 // default synthetic |D| = 50 000 records
	cfg.RealScale = 0.05
	cfg.QueriesPerSize = 10
	return cfg
}

// Shared fixtures, built once.
var (
	onceSynth sync.Once
	synthPair *experiments.Pair
	synthGen  *workload.Generator

	onceMSWeb sync.Once
	mswebPair *experiments.Pair
	mswebGen  *workload.Generator

	onceMSNBC sync.Once
	msnbcPair *experiments.Pair
	msnbcGen  *workload.Generator
)

func synthFixture(b *testing.B) (*experiments.Pair, *workload.Generator) {
	b.Helper()
	onceSynth.Do(func() {
		cfg := benchCfg()
		d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
		if err != nil {
			panic(err)
		}
		synthPair, err = cfg.BuildPair(d)
		if err != nil {
			panic(err)
		}
		synthGen = workload.NewGenerator(d, 42)
	})
	return synthPair, synthGen
}

func mswebFixture(b *testing.B) (*experiments.Pair, *workload.Generator) {
	b.Helper()
	onceMSWeb.Do(func() {
		cfg := benchCfg()
		d, err := dataset.GenerateMSWeb(dataset.MSWebConfig{
			BaseRecords: int(32711 * cfg.RealScale), Replicas: 10, Seed: 2,
		})
		if err != nil {
			panic(err)
		}
		mswebPair, err = cfg.BuildPair(d)
		if err != nil {
			panic(err)
		}
		mswebGen = workload.NewGenerator(d, 43)
	})
	return mswebPair, mswebGen
}

func msnbcFixture(b *testing.B) (*experiments.Pair, *workload.Generator) {
	b.Helper()
	onceMSNBC.Do(func() {
		cfg := benchCfg()
		d, err := dataset.GenerateMSNBC(dataset.MSNBCConfig{
			NumRecords: int(989818 * cfg.RealScale), Seed: 3,
		})
		if err != nil {
			panic(err)
		}
		msnbcPair, err = cfg.BuildPair(d)
		if err != nil {
			panic(err)
		}
		msnbcGen = workload.NewGenerator(d, 44)
	})
	return msnbcPair, msnbcGen
}

// benchWorkload runs queries round-robin against ix, reporting page
// accesses and modelled I/O per query alongside the usual timings.
func benchWorkload(b *testing.B, ix experiments.ContainmentIndex, queries []workload.Query) {
	b.Helper()
	if len(queries) == 0 {
		b.Skip("no queries available at this scale")
	}
	pool := ix.Pool()
	if err := pool.DropAll(); err != nil {
		b.Fatal(err)
	}
	pool.ResetStats()
	disk := storage.DefaultDiskModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunQuery(ix, queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := pool.Stats()
	b.ReportMetric(float64(st.Misses)/float64(b.N), "pages/op")
	b.ReportMetric(float64(disk.Time(st).Microseconds())/1000/float64(b.N), "io_ms/op")
}

// benchPairWorkload runs the same workload for both systems as
// sub-benchmarks, mirroring the paper's IF-vs-OIF series.
func benchPairWorkload(b *testing.B, pair *experiments.Pair, queries []workload.Query) {
	b.Helper()
	b.Run("IF", func(b *testing.B) { benchWorkload(b, pair.IF, queries) })
	b.Run("OIF", func(b *testing.B) { benchWorkload(b, pair.OIF, queries) })
}

// --- Figure 7: real-data twins, |qs| = 4 representative point ----------

func BenchmarkFig7MSWebSubset(b *testing.B) {
	pair, gen := mswebFixture(b)
	benchPairWorkload(b, pair, gen.Queries(workload.Subset, 4, 10))
}

func BenchmarkFig7MSWebEquality(b *testing.B) {
	pair, gen := mswebFixture(b)
	benchPairWorkload(b, pair, gen.Queries(workload.Equality, 4, 10))
}

func BenchmarkFig7MSWebSuperset(b *testing.B) {
	pair, gen := mswebFixture(b)
	benchPairWorkload(b, pair, gen.Queries(workload.Superset, 4, 10))
}

func BenchmarkFig7MSNBCSubset(b *testing.B) {
	pair, gen := msnbcFixture(b)
	benchPairWorkload(b, pair, gen.Queries(workload.Subset, 4, 10))
}

func BenchmarkFig7MSNBCEquality(b *testing.B) {
	pair, gen := msnbcFixture(b)
	benchPairWorkload(b, pair, gen.Queries(workload.Equality, 4, 10))
}

func BenchmarkFig7MSNBCSuperset(b *testing.B) {
	pair, gen := msnbcFixture(b)
	benchPairWorkload(b, pair, gen.Queries(workload.Superset, 4, 10))
}

// --- Figures 8-10: synthetic sweeps at the default parameter point -----

func BenchmarkFig8Subset(b *testing.B) {
	pair, gen := synthFixture(b)
	for _, size := range []int{2, 4, 8, 16} {
		queries := gen.Queries(workload.Subset, size, 10)
		b.Run(sizeName(size)+"/IF", func(b *testing.B) { benchWorkload(b, pair.IF, queries) })
		b.Run(sizeName(size)+"/OIF", func(b *testing.B) { benchWorkload(b, pair.OIF, queries) })
	}
}

func BenchmarkFig9Equality(b *testing.B) {
	pair, gen := synthFixture(b)
	for _, size := range []int{2, 4, 8, 16} {
		queries := gen.Queries(workload.Equality, size, 10)
		b.Run(sizeName(size)+"/IF", func(b *testing.B) { benchWorkload(b, pair.IF, queries) })
		b.Run(sizeName(size)+"/OIF", func(b *testing.B) { benchWorkload(b, pair.OIF, queries) })
	}
}

func BenchmarkFig10Superset(b *testing.B) {
	pair, gen := synthFixture(b)
	for _, size := range []int{2, 4, 8, 16} {
		queries := gen.Queries(workload.Superset, size, 10)
		b.Run(sizeName(size)+"/IF", func(b *testing.B) { benchWorkload(b, pair.IF, queries) })
		b.Run(sizeName(size)+"/OIF", func(b *testing.B) { benchWorkload(b, pair.OIF, queries) })
	}
}

func sizeName(size int) string { return fmt.Sprintf("qs%02d", size) }

// --- Ordering ablation (§5 "Impact of the OIF ordering") ---------------

func BenchmarkOrderingAblation(b *testing.B) {
	pair, gen := synthFixture(b)
	cfg := benchCfg()
	ub, err := cfg.BuildUnordered(pair.Data)
	if err != nil {
		b.Fatal(err)
	}
	queries := gen.Queries(workload.Subset, 6, 10)
	b.Run("UnorderedBTree", func(b *testing.B) { benchWorkload(b, ub, queries) })
	b.Run("OIF", func(b *testing.B) { benchWorkload(b, pair.OIF, queries) })
}

// --- Space overhead (§5) ------------------------------------------------

func BenchmarkSpaceBuild(b *testing.B) {
	cfg := benchCfg()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("IF", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			pair, err := cfg.BuildPair(d)
			if err != nil {
				b.Fatal(err)
			}
			bytes = pair.IF.Space().Bytes
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
	b.Run("OIF", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			pair, err := cfg.BuildPair(d)
			if err != nil {
				b.Fatal(err)
			}
			bytes = pair.OIF.Space().Bytes
		}
		b.ReportMetric(float64(bytes), "bytes")
	})
}

// --- Store: parallel traffic through the public facade ------------------

// BenchmarkStoreExecBatch measures batched parallel queries through
// setcontain.Store — the concurrency surface the ROADMAP's heavy-traffic
// goal rides on — against the same engines the figures use.
func BenchmarkStoreExecBatch(b *testing.B) {
	pair, gen := synthFixture(b)
	queries, err := experiments.MixedQueries(gen, 4, 10)
	if err != nil {
		b.Fatal(err)
	}
	if len(queries) == 0 {
		b.Skip("no queries available at this scale")
	}
	ctx := context.Background()
	for _, sys := range []struct {
		name string
		eng  setcontain.Engine
	}{{"IF", pair.IF}, {"OIF", pair.OIF}} {
		b.Run(sys.name, func(b *testing.B) {
			store := setcontain.NewStore(setcontain.IndexOver(sys.eng), 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.ExecBatch(ctx, queries); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(queries)), "queries/batch")
		})
	}
}

// --- Performance summary: update path (§4.4 / §5) -----------------------

func BenchmarkSummaryUpdate(b *testing.B) {
	cfg := benchCfg()
	base, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	// The paper inserts 200K records into a 1M database; keep the same
	// 20% delta-to-base ratio so the OIF's re-sort amortises comparably.
	extraCfg := cfg.SyntheticDefaults()
	extraCfg.NumRecords = base.Len() / 5
	extraCfg.Seed = 77
	extra, err := dataset.GenerateSynthetic(extraCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("IF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pair, err := cfg.BuildPair(base)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, r := range extra.Records() {
				if _, err := pair.IF.Insert(r.Set); err != nil {
					b.Fatal(err)
				}
			}
			if err := pair.IF.MergeDelta(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OIF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pair, err := cfg.BuildPair(base)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, r := range extra.Records() {
				if _, err := pair.OIF.Insert(r.Set); err != nil {
					b.Fatal(err)
				}
			}
			if err := pair.OIF.MergeDelta(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Sharded engine: scale-out build and throughput ---------------------

// BenchmarkShardedBuild times the parallel shard build at increasing
// shard counts; on multi-core machines build time drops with shards.
func BenchmarkShardedBuild(b *testing.B) {
	cfg := benchCfg()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%02d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := setcontain.New(setcontain.WrapDataset(d),
					setcontain.WithKind(setcontain.Sharded),
					setcontain.WithShards(shards),
					setcontain.WithBuildParallelism(shards),
				); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Durability: snapshot save and restore ------------------------------

// BenchmarkSnapshotRestore measures the warm-boot path per engine kind:
// Open-ing a snapshot container back into a queryable index. Besides
// ns/op it reports the snapshot footprint ("snapshot_bytes") and the
// restore time in milliseconds ("restore_ms/op") — the metric benchjson
// carries into the per-SHA artifacts, so restore-time regressions gate
// like query-time ones.
func BenchmarkSnapshotRestore(b *testing.B) {
	cfg := benchCfg()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []setcontain.Kind{setcontain.OIF, setcontain.InvertedFile, setcontain.Sharded} {
		b.Run(kind.String(), func(b *testing.B) {
			idx, err := setcontain.New(setcontain.WrapDataset(d), setcontain.WithKind(kind))
			if err != nil {
				b.Fatal(err)
			}
			var snap bytes.Buffer
			if err := idx.Save(&snap); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(snap.Len()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := setcontain.Open(bytes.NewReader(snap.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(snap.Len()), "snapshot_bytes")
			b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "restore_ms/op")
		})
	}
}

// BenchmarkSnapshotSave measures producing the container (the
// POST /admin/snapshot hot path) against a discarding writer.
func BenchmarkSnapshotSave(b *testing.B) {
	cfg := benchCfg()
	d, err := dataset.GenerateSynthetic(cfg.SyntheticDefaults())
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []setcontain.Kind{setcontain.OIF, setcontain.InvertedFile, setcontain.Sharded} {
		b.Run(kind.String(), func(b *testing.B) {
			idx, err := setcontain.New(setcontain.WrapDataset(d), setcontain.WithKind(kind))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := idx.Save(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedStoreExecBatch replays the mixed Store workload of
// BenchmarkStoreExecBatch against sharded engines, sweeping the shard
// count; compare against that benchmark's single-engine numbers.
func BenchmarkShardedStoreExecBatch(b *testing.B) {
	pair, gen := synthFixture(b)
	queries, err := experiments.MixedQueries(gen, 4, 10)
	if err != nil {
		b.Fatal(err)
	}
	if len(queries) == 0 {
		b.Skip("no queries available at this scale")
	}
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards%02d", shards), func(b *testing.B) {
			idx, err := setcontain.New(setcontain.WrapDataset(pair.Data),
				setcontain.WithKind(setcontain.Sharded),
				setcontain.WithShards(shards),
			)
			if err != nil {
				b.Fatal(err)
			}
			store := setcontain.NewStore(idx, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.ExecBatch(ctx, queries); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(queries)), "queries/batch")
		})
	}
}
