#!/bin/sh
# linkcheck.sh — verify every relative markdown link in README.md,
# docs/, and the example READMEs points at a file or directory that
# exists. External (http/https/mailto) links are left to humans; CI
# must not fail on a third party's outage. Exits non-zero listing every
# broken link.
set -eu

cd "$(dirname "$0")/.."

fail=0
for md in README.md docs/*.md examples/*/README.md; do
    [ -f "$md" ] || continue
    dir=$(dirname "$md")
    # Extract ](target) link targets, one per line, tolerating several
    # links per line.
    targets=$(grep -o ']([^)]*)' "$md" 2>/dev/null | sed 's/^](//; s/)$//') || continue
    for t in $targets; do
        case "$t" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        # Strip an in-page anchor.
        path=${t%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $md -> $t"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "linkcheck: broken relative links found" >&2
    exit 1
fi
echo "linkcheck: all relative links resolve"
