#!/usr/bin/env bash
# snapshot-smoke: build a synthetic index, snapshot it, restore it, and
# verify the restored instance answers a deterministic query sweep
# byte-identically (oifquery's `digest` command hashes the answers of a
# fixed workload). Runs for every snapshot-capable engine kind, plus a
# mutated (insert + delete, unmerged) variant, so the pending-state path
# is smoked too. Exercised by `make snapshot-smoke` and the CI matrix.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "snapshot-smoke: building tools"
go build -o "$tmp/setgen" ./cmd/setgen
go build -o "$tmp/oifquery" ./cmd/oifquery

"$tmp/setgen" -kind synthetic -records 20000 -domain 500 -zipf 0.9 -seed 7 -out "$tmp/data.txt"

# digest_of <oifquery args...> — feeds the repl script on fd 0 and
# extracts the digest line.
digest_of() {
    printf 'digest\nquit\n' | "$tmp/oifquery" "$@" | sed -n 's/^.*digest: //p'
}

mutated_digest_of() {
    printf 'insert 3 5 9\ndelete 12\ndelete 40\ndigest\nquit\n' \
        | "$tmp/oifquery" "$@" | sed -n 's/^.*digest: //p'
}

status=0
for kind in oif if sharded; do
    snap="$tmp/$kind.snap"
    built=$(printf 'digest\nquit\n' | "$tmp/oifquery" -data "$tmp/data.txt" -index "$kind" -save "$snap" \
        | sed -n 's/^.*digest: //p')
    restored=$(digest_of -load "$snap")
    if [ -z "$built" ] || [ "$built" != "$restored" ]; then
        echo "snapshot-smoke: $kind: digest mismatch (built=$built restored=$restored)" >&2
        status=1
    else
        echo "snapshot-smoke: $kind: ok ($(wc -c <"$snap") bytes, digest $built)"
    fi

    # Mutated path: apply the same insert + unmerged deletes to a fresh
    # build and to the restored snapshot; the digests must agree, proving
    # a restored index mutates exactly like a built one.
    a=$(mutated_digest_of -data "$tmp/data.txt" -index "$kind")
    b=$(mutated_digest_of -load "$snap")
    if [ -z "$a" ] || [ "$a" != "$b" ]; then
        echo "snapshot-smoke: $kind: mutated digest mismatch (built=$a restored=$b)" >&2
        status=1
    else
        echo "snapshot-smoke: $kind: mutated ok (digest $a)"
    fi
done

exit $status
