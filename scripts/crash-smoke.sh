#!/usr/bin/env bash
# crash-smoke: prove an acknowledged write survives kill -9. Start
# setcontaind with a write-ahead log (-fsync always), apply acknowledged
# inserts and a delete over HTTP, record a probe query's answer, kill
# the daemon with SIGKILL (no shutdown hook runs), restart it on the
# same -wal-dir, and verify the probe answers identically, the replayed
# record count matches, and a checkpoint folds the log. Exercised by
# `make crash-smoke` and the CI matrix.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
port=18743
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "crash-smoke: building setcontaind"
go build -o "$tmp/setcontaind" ./cmd/setcontaind

start_daemon() {
    "$tmp/setcontaind" -addr "127.0.0.1:$port" -synthetic 5000 -domain 200 -seed 7 \
        -wal-dir "$tmp/wal" -fsync always >>"$tmp/daemon.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do
        if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "crash-smoke: daemon did not become healthy; log follows" >&2
    cat "$tmp/daemon.log" >&2
    return 1
}

base="http://127.0.0.1:$port"
probe="$base/query?q=subset{3+17}"

start_daemon
before=$(curl -sfg "$probe")

# Three acknowledged mutations: two inserts matching the probe, then a
# delete of the first. The HTTP 200 means the WAL records are fsynced.
ids=$(curl -sf -d '{"sets":[[3,17,99],[3,17]]}' "$base/admin/insert")
first=$(echo "$ids" | tr -d '[:space:]' | sed -n 's/.*\[\([0-9]*\),.*/\1/p')
if [ -z "$first" ]; then
    echo "crash-smoke: could not parse inserted ids from: $ids" >&2
    exit 1
fi
curl -sf -d "{\"ids\":[$first]}" "$base/admin/delete" >/dev/null
expected=$(curl -sfg "$probe")
if [ "$expected" = "$before" ]; then
    echo "crash-smoke: probe unchanged by acknowledged mutations" >&2
    exit 1
fi

echo "crash-smoke: kill -9 after 3 acknowledged mutations"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

start_daemon
after=$(curl -sfg "$probe")
if [ "$after" != "$expected" ]; then
    echo "crash-smoke: answers diverged after crash recovery" >&2
    echo "  expected: $expected" >&2
    echo "  got:      $after" >&2
    exit 1
fi
replayed=$(curl -sf "$base/stats" | tr -d "[:space:]" | sed -n 's/.*"replay_records":\([0-9]*\).*/\1/p')
if [ "$replayed" != "3" ]; then
    echo "crash-smoke: replayed $replayed log records, want 3" >&2
    exit 1
fi
echo "crash-smoke: recovery ok (3 records replayed, probe answers identical)"

# Checkpoint, crash again, and recover from the snapshot alone: the
# replayed tail must now be empty while the answers still match.
curl -sf -X POST "$base/admin/checkpoint" >/dev/null
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

start_daemon
after=$(curl -sfg "$probe")
replayed=$(curl -sf "$base/stats" | tr -d "[:space:]" | sed -n 's/.*"replay_records":\([0-9]*\).*/\1/p')
if [ "$after" != "$expected" ] || [ "$replayed" != "0" ]; then
    echo "crash-smoke: post-checkpoint recovery failed (replayed=$replayed)" >&2
    exit 1
fi
echo "crash-smoke: checkpoint ok (0 records replayed, probe answers identical)"
