#!/usr/bin/env bash
# scatter-smoke: prove the distributed serving path end-to-end. Start
# two shard daemons (each holding its round-robin slice of the same
# synthetic dataset) and a coordinator fanning out to them over the
# /shard/* wire protocol, drive mixed query/expression/limit traffic
# through the coordinator and a single-node daemon, and require
# byte-identical answers — before mutations, with pending inserts and a
# delete, and after the delta merge. Then kill -9 one shard daemon and
# require the coordinator to answer with a clean partial-failure error
# naming the dead shard. Exercised by `make scatter-smoke` and the CI
# matrix.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
single_port=18840
shard0_port=18841
shard1_port=18842
coord_port=18843
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "scatter-smoke: building setcontaind"
go build -o "$tmp/setcontaind" ./cmd/setcontaind

data_flags=(-synthetic 4000 -domain 150 -seed 9)

wait_healthy() {
    local port=$1 log=$2
    for _ in $(seq 1 100); do
        if curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "scatter-smoke: daemon on :$port did not become healthy; log follows" >&2
    cat "$log" >&2
    return 1
}

start_daemon() { # args: log-name, daemon flags...
    local log="$tmp/$1.log"
    shift
    "$tmp/setcontaind" "$@" >>"$log" 2>&1 &
    pids+=($!)
    disown $!
}

echo "scatter-smoke: starting single-node reference, two shard daemons, coordinator"
start_daemon single -addr "127.0.0.1:$single_port" "${data_flags[@]}" -index oif
start_daemon shard0 -addr "127.0.0.1:$shard0_port" "${data_flags[@]}" -shard-of 0 -shard-count 2 -index oif
start_daemon shard1 -addr "127.0.0.1:$shard1_port" "${data_flags[@]}" -shard-of 1 -shard-count 2 -index oif
wait_healthy $single_port "$tmp/single.log"
wait_healthy $shard0_port "$tmp/shard0.log"
wait_healthy $shard1_port "$tmp/shard1.log"
start_daemon coord -addr "127.0.0.1:$coord_port" \
    -coordinator "http://127.0.0.1:$shard0_port,http://127.0.0.1:$shard1_port"
wait_healthy $coord_port "$tmp/coord.log"
shard1_pid=${pids[2]}

single="http://127.0.0.1:$single_port"
coord="http://127.0.0.1:$coord_port"

# Mixed traffic: plain predicates, boolean expressions, and limits.
# (+ encodes a space in the query string; -g keeps curl from globbing
# the braces.)
queries=(
    'query?q=subset{3+17}'
    'query?q=equality{3+17}'
    'query?q=superset{1+2+3}'
    'query?q=subset{3}+and+not+superset{17}'
    'query?q=(subset{2}+or+subset{5})+and+not+equality{2+5}'
    'query?q=subset{1}&limit=5'
    'query?q=subset{2}+or+subset{7}&limit=12'
)

compare_all() {
    local stage=$1
    for q in "${queries[@]}"; do
        a=$(curl -sfg "$single/$q")
        b=$(curl -sfg "$coord/$q")
        if [ "$a" != "$b" ]; then
            echo "scatter-smoke: $stage: answers diverged for $q" >&2
            echo "  single:      $a" >&2
            echo "  coordinator: $b" >&2
            exit 1
        fi
    done
    digest=$(for q in "${queries[@]}"; do curl -sfg "$coord/$q"; done | sha256sum | cut -d' ' -f1)
    echo "scatter-smoke: $stage: answers identical (digest ${digest:0:12})"
}

compare_all "built"

# Mutations through both front doors: the assigned global ids must
# match, and answers must stay identical while the delta is pending and
# after the merge folds it in.
ids_single=$(curl -sf -d '{"sets":[[3,17,42],[1,2,3],[17]]}' "$single/admin/insert")
ids_coord=$(curl -sf -d '{"sets":[[3,17,42],[1,2,3],[17]]}' "$coord/admin/insert")
if [ "$ids_single" != "$ids_coord" ]; then
    echo "scatter-smoke: insert ids diverged: single $ids_single, coordinator $ids_coord" >&2
    exit 1
fi
curl -sf -d '{"ids":[5,17]}' "$single/admin/delete" >/dev/null
curl -sf -d '{"ids":[5,17]}' "$coord/admin/delete" >/dev/null
compare_all "pending"

curl -sf -X POST "$single/admin/merge" >/dev/null
curl -sf -X POST "$coord/admin/merge" >/dev/null
compare_all "merged"

# Partial failure: kill one shard daemon outright. The coordinator must
# answer with an error naming the dead shard — not hang, not return a
# silently partial answer.
echo "scatter-smoke: kill -9 shard 1"
kill -9 "$shard1_pid"
for _ in $(seq 1 50); do
    kill -0 "$shard1_pid" 2>/dev/null || break
    sleep 0.1
done
resp=$(curl -sfg --max-time 10 "$coord/query?q=subset{3}")
case "$resp" in
*'"error"'*'shard 1'*)
    echo "scatter-smoke: partial failure reported cleanly: $(echo "$resp" | head -c 120)" ;;
*)
    echo "scatter-smoke: expected a shard 1 error from the coordinator, got: $resp" >&2
    exit 1 ;;
esac

echo "scatter-smoke: ok"
